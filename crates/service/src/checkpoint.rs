//! Checkpoints: durable snapshots of the whole served view, so
//! recovery replays only the log *tail*.
//!
//! Freezing the state is an `Arc` bump (the composite
//! [`ServiceSnapshot`] physically shares the CoW store with the
//! writer), so the hot path hands the frozen snapshot to a background
//! thread ([`Checkpointer`]) and moves on; serialization, fsync, WAL
//! rotation, and pruning all happen off the write path. If a
//! checkpoint is requested while the previous one is still being
//! written, the request is dropped (`skipped_busy`) — a later epoch
//! will try again.
//!
//! # File format and validity
//!
//! A checkpoint `chk-<epoch>.ckpt` is textual:
//!
//! ```text
//! #mmv-checkpoint v1
//! meta epoch=<global> tickets=<n> mode=<plain|supports> op=<tp|wp> shards=<k>
//! shard 0 epoch=<shard epoch>
//! <entry line>*          (mmv_core::parser::render_entry)
//! shard 1 epoch=<…>
//! …
//! #end crc=<crc32 of everything above>
//! ```
//!
//! It is written to a temp file, fsynced, renamed into place, and the
//! directory fsynced — so a crash mid-write leaves no half-visible
//! checkpoint. The `#end` trailer is the validity mark:
//! [`load_newest`] takes the newest file whose trailer CRC matches and
//! silently falls back to an older checkpoint (or none: full replay)
//! past any file without one — the torn-tail contract, applied to
//! checkpoints. A file whose trailer *matches* but whose content does
//! not parse is damage, not a torn write, and fails with
//! [`StorageError::Corrupt`].
//!
//! After a checkpoint at epoch `e` is durable, the WAL is asked to
//! rotate, and segments fully covered by `e` (see
//! [`crate::wal::prune_segments`]) plus checkpoints older than the
//! previous one are deleted.
//!
//! # Failure handling
//!
//! All checkpoint IO goes through a [`Vfs`] and is retried under the
//! service's [`RetryPolicy`] while the failure is transient
//! ([`StorageError::is_transient`]) — the write-to-temp protocol makes
//! a whole-write retry idempotent. A failure that survives retries
//! **never kills the thread**: it counts into
//! [`CheckpointStats::failed`], degrades the service health
//! ([`crate::ServiceHealth::Degraded`] — batches still commit, but
//! recovery will replay a longer WAL tail), and the failed snapshot is
//! held and re-attempted on a timer until either it succeeds or a
//! newer snapshot supersedes it. The first subsequent success restores
//! the checkpoint path to healthy.

use crate::health::{Health, RetryPolicy};
use crate::snapshot::ServiceSnapshot;
use crate::vfs::{StdVfs, StorageOp, Vfs};
use crate::wal::{crc32, prune_segments_with, StorageError, Wal};
use mmv_core::parser::{parse_entry, render_entry, render_wal_payload, ParsedEntry, WalPayload};
use mmv_core::tp::Operator;
use mmv_core::SupportMode;
use mmv_obs::{Counter, Gauge, Histogram, Unit};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Cumulative checkpointer counters (see [`Checkpointer::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints durably written.
    pub checkpoints: u64,
    /// Global epoch of the newest durable checkpoint.
    pub last_epoch: u64,
    /// Wall-clock of the last checkpoint write (serialize + fsync +
    /// rename), in microseconds.
    pub last_micros: u64,
    /// Sum of all checkpoint write times, in microseconds.
    pub total_micros: u64,
    /// Entries serialized by the last checkpoint.
    pub last_entries: u64,
    /// WAL segments deleted by pruning, cumulative.
    pub segments_pruned: u64,
    /// Requests dropped because a checkpoint was already in flight.
    pub skipped_busy: u64,
    /// Checkpoint attempts that failed with an I/O error (the service
    /// keeps running; recovery falls back to an older checkpoint).
    pub failed: u64,
}

/// The detached `mmv-obs` instruments behind [`CheckpointStats`].
///
/// The checkpointer bumps these lock-free from its thread;
/// [`Checkpointer::stats`] is a view over them and the service registers
/// the same handles into its metrics registry.
#[derive(Clone, Debug, Default)]
pub(crate) struct CheckpointMetrics {
    pub checkpoints: Counter,
    pub failed: Counter,
    pub skipped_busy: Counter,
    pub segments_pruned: Counter,
    pub total_micros: Counter,
    pub last_epoch: Gauge,
    pub last_micros: Gauge,
    pub last_entries: Gauge,
    /// Checkpoint write wall-clock in nanoseconds (serialize + fsync +
    /// rename), registered with `Unit::Seconds`.
    pub duration: Histogram,
}

impl CheckpointMetrics {
    fn snapshot(&self) -> CheckpointStats {
        CheckpointStats {
            checkpoints: self.checkpoints.get(),
            last_epoch: self.last_epoch.get() as u64,
            last_micros: self.last_micros.get() as u64,
            total_micros: self.total_micros.get(),
            last_entries: self.last_entries.get() as u64,
            segments_pruned: self.segments_pruned.get(),
            skipped_busy: self.skipped_busy.get(),
            failed: self.failed.get(),
        }
    }

    /// Registers every instrument under its `mmv_checkpoint_` name.
    pub(crate) fn register_into(&self, registry: &mmv_obs::MetricsRegistry) {
        registry.register_counter(
            "mmv_checkpoints_total",
            "Checkpoints durably written",
            &[],
            &self.checkpoints,
        );
        registry.register_counter(
            "mmv_checkpoint_failed_total",
            "Checkpoint attempts that failed with an I/O error",
            &[],
            &self.failed,
        );
        registry.register_counter(
            "mmv_checkpoint_skipped_busy_total",
            "Checkpoint requests dropped because one was in flight",
            &[],
            &self.skipped_busy,
        );
        registry.register_counter(
            "mmv_checkpoint_segments_pruned_total",
            "WAL segments deleted by checkpoint pruning",
            &[],
            &self.segments_pruned,
        );
        registry.register_gauge(
            "mmv_checkpoint_last_epoch",
            "Global epoch of the newest durable checkpoint",
            &[],
            &self.last_epoch,
        );
        registry.register_gauge(
            "mmv_checkpoint_last_entries",
            "Entries serialized by the last checkpoint",
            &[],
            &self.last_entries,
        );
        registry.register_histogram(
            "mmv_checkpoint_seconds",
            "Checkpoint write wall-clock (serialize + fsync + rename)",
            Unit::Seconds,
            &[],
            &self.duration,
        );
    }
}

struct Job {
    snapshot: Arc<ServiceSnapshot>,
    tickets: u64,
}

/// The background checkpoint writer: owns the thread, accepts frozen
/// snapshots, and keeps counters.
pub struct Checkpointer {
    tx: Option<SyncSender<Job>>,
    handle: Option<JoinHandle<()>>,
    metrics: CheckpointMetrics,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Checkpointer {
    /// `Checkpointer::spawn_with` through the production [`StdVfs`],
    /// a default retry policy, a detached health cell, and a 250 ms
    /// re-attempt timer.
    pub fn spawn(dir: PathBuf, op: Operator, wal: Arc<Wal>) -> Checkpointer {
        Checkpointer::spawn_with(
            Arc::new(StdVfs),
            dir,
            op,
            wal,
            RetryPolicy::default(),
            Arc::new(Health::default()),
            Duration::from_millis(250),
        )
    }

    /// Spawns the checkpoint thread for `dir`. `wal` is asked to
    /// rotate after each durable checkpoint, and pruning runs against
    /// the same directory. Transient IO failures retry under `retry`;
    /// persistent ones degrade `health` and re-attempt every
    /// `retry_interval` without ever killing the thread.
    pub(crate) fn spawn_with(
        vfs: Arc<dyn Vfs>,
        dir: PathBuf,
        op: Operator,
        wal: Arc<Wal>,
        retry: RetryPolicy,
        health: Arc<Health>,
        retry_interval: Duration,
    ) -> Checkpointer {
        let metrics = CheckpointMetrics::default();
        let thread_metrics = metrics.clone();
        let (tx, rx) = sync_channel::<Job>(1);
        let handle = std::thread::Builder::new()
            .name("mmv-checkpointer".into())
            .spawn(move || {
                checkpoint_loop(
                    &rx,
                    &*vfs,
                    &dir,
                    op,
                    &wal,
                    retry,
                    &health,
                    retry_interval,
                    &thread_metrics,
                );
            })
            .expect("spawn checkpointer");
        Checkpointer {
            tx: Some(tx),
            handle: Some(handle),
            metrics,
        }
    }

    /// Hands a frozen snapshot to the checkpoint thread. Returns
    /// `false` (and counts `skipped_busy`) if one is already being
    /// written — checkpointing is best-effort off the hot path.
    pub fn request(&self, snapshot: Arc<ServiceSnapshot>, tickets: u64) -> bool {
        let Some(tx) = &self.tx else { return false };
        match tx.try_send(Job { snapshot, tickets }) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.metrics.skipped_busy.inc();
                false
            }
        }
    }

    /// A snapshot of the cumulative counters.
    pub fn stats(&self) -> CheckpointStats {
        self.metrics.snapshot()
    }

    /// The detached instrument handles, for registry registration.
    pub(crate) fn metrics(&self) -> CheckpointMetrics {
        self.metrics.clone()
    }

    /// Drains the queue and waits for any in-flight checkpoint — the
    /// clean-shutdown path, so tests can assert on durable state.
    pub fn flush(&mut self) {
        if let Some(tx) = self.tx.take() {
            drop(tx);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The checkpoint thread body: receive a frozen snapshot, write it
/// (whole-write retry on transient faults), and on a persistent
/// failure hold the job — degraded, re-attempting on a timer, replaced
/// whenever a newer snapshot arrives — instead of dying.
#[allow(clippy::too_many_arguments)]
fn checkpoint_loop(
    rx: &Receiver<Job>,
    vfs: &dyn Vfs,
    dir: &Path,
    op: Operator,
    wal: &Wal,
    retry: RetryPolicy,
    health: &Health,
    retry_interval: Duration,
    metrics: &CheckpointMetrics,
) {
    let mut held: Option<Job> = None;
    let mut disconnected = false;
    loop {
        let job = match held.take() {
            Some(j) => j,
            None if disconnected => return,
            None => match rx.recv() {
                Ok(j) => j,
                Err(_) => return,
            },
        };
        let start = Instant::now();
        let epoch = job.snapshot.epoch();
        let entries = job.snapshot.len() as u64;
        let attempt = retry.run(
            || write_checkpoint_with(vfs, dir, &job.snapshot, job.tickets, op),
            StorageError::is_transient,
        );
        match attempt {
            Ok(_) => {
                health.checkpoint_ok();
                // Rotation first, so records appended from here on
                // land in a segment the *next* checkpoint can prune
                // everything before.
                wal.request_rotation();
                let _ = wal.append(
                    epoch,
                    &render_wal_payload(&WalPayload::Checkpoint { epoch }),
                );
                let pruned = prune_segments_with(vfs, dir, epoch).unwrap_or(0);
                let _ = prune_checkpoints_with(vfs, dir, epoch);
                let took = start.elapsed();
                let micros = took.as_micros() as u64;
                metrics.checkpoints.inc();
                metrics.last_epoch.set_max(epoch as i64);
                metrics.last_micros.set(micros as i64);
                metrics.total_micros.add(micros);
                metrics.last_entries.set(entries as i64);
                metrics.segments_pruned.add(pruned);
                metrics.duration.observe_nanos(took);
            }
            Err(e) => {
                metrics.failed.inc();
                health.checkpoint_failed(&format!("checkpoint at epoch {epoch}: {e}"));
                if disconnected {
                    // Shutdown already requested: this was the final
                    // attempt.
                    return;
                }
                // Hold the snapshot and re-attempt on a timer; a newer
                // one supersedes it (checkpoints are cumulative — only
                // the newest matters).
                held = Some(match rx.recv_timeout(retry_interval) {
                    Ok(newer) => newer,
                    Err(RecvTimeoutError::Timeout) => job,
                    Err(RecvTimeoutError::Disconnected) => {
                        disconnected = true;
                        job
                    }
                });
            }
        }
    }
}

fn mode_name(mode: SupportMode) -> &'static str {
    match mode {
        SupportMode::Plain => "plain",
        SupportMode::WithSupports => "supports",
    }
}

fn op_name(op: Operator) -> &'static str {
    match op {
        Operator::Tp => "tp",
        Operator::Wp => "wp",
    }
}

/// [`write_checkpoint_with`] through the production [`StdVfs`].
pub fn write_checkpoint(
    dir: &Path,
    snapshot: &ServiceSnapshot,
    tickets: u64,
    op: Operator,
) -> Result<PathBuf, StorageError> {
    write_checkpoint_with(&StdVfs, dir, snapshot, tickets, op)
}

/// Serializes and durably writes one checkpoint; returns its path.
/// Write-to-temp, fsync, rename, fsync-dir — never a half-visible
/// file, and therefore safe to re-run wholesale after any failure.
pub fn write_checkpoint_with(
    vfs: &dyn Vfs,
    dir: &Path,
    snapshot: &ServiceSnapshot,
    tickets: u64,
    op: Operator,
) -> Result<PathBuf, StorageError> {
    let mut body = String::new();
    body.push_str("#mmv-checkpoint v1\n");
    writeln!(
        body,
        "meta epoch={} tickets={tickets} mode={} op={} shards={}",
        snapshot.epoch(),
        mode_name(snapshot.mode()),
        op_name(op),
        snapshot.shard_count()
    )
    .expect("write to String");
    for s in 0..snapshot.shard_count() {
        let shard = snapshot.shard(s);
        writeln!(body, "shard {s} epoch={}", shard.epoch()).expect("write to String");
        for (_, e) in shard.view().live_entries() {
            body.push_str(&render_entry(&e.atom, e.support.as_ref(), &e.children_args));
            body.push('\n');
        }
    }
    let trailer = format!("#end crc={:08x}\n", crc32(body.as_bytes()));
    let path = dir.join(format!("chk-{:012}.ckpt", snapshot.epoch()));
    let tmp = dir.join(format!("chk-{:012}.ckpt.tmp", snapshot.epoch()));
    {
        let f = vfs
            .create(&tmp)
            .map_err(|e| StorageError::io(StorageOp::Create, tmp.clone(), e))?;
        f.write_all(body.as_bytes())
            .map_err(|e| StorageError::io(StorageOp::Append, tmp.clone(), e))?;
        f.write_all(trailer.as_bytes())
            .map_err(|e| StorageError::io(StorageOp::Append, tmp.clone(), e))?;
        f.sync_data()
            .map_err(|e| StorageError::io(StorageOp::Fsync, tmp.clone(), e))?;
    }
    vfs.rename(&tmp, &path)
        .map_err(|e| StorageError::io(StorageOp::Rename, path.clone(), e))?;
    vfs.sync_dir(dir)
        .map_err(|e| StorageError::io(StorageOp::SyncDir, dir, e))?;
    Ok(path)
}

/// One recovered checkpoint: the global state at `epoch`.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The global epoch the checkpoint covers (every record with a
    /// larger epoch must be replayed from the WAL).
    pub epoch: u64,
    /// The external-insertion ticket counter at checkpoint time.
    pub tickets: u64,
    /// The view's support mode.
    pub mode: SupportMode,
    /// The fixpoint operator the view was built under.
    pub op: Operator,
    /// Per shard, in id order: the shard's epoch and its entries.
    pub shards: Vec<(u64, Vec<ParsedEntry>)>,
}

fn checkpoint_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    // mmv-lint: allow(vfs-confine) recovery-read allowlist: checkpoint discovery precedes the Vfs-fronted service
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = name
            .strip_prefix("chk-")
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|d| d.parse::<u64>().ok())
        {
            out.push((epoch, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the newest *valid* checkpoint in `dir` (highest epoch whose
/// `#end` trailer CRC matches), silently skipping torn ones. `None`
/// if no valid checkpoint exists — recovery then replays the whole
/// WAL. A checkpoint with an intact trailer but unparseable content
/// is [`StorageError::Corrupt`].
pub fn load_newest(dir: &Path) -> Result<Option<LoadedCheckpoint>, StorageError> {
    let files = checkpoint_files(dir).map_err(|e| StorageError::io(StorageOp::ReadDir, dir, e))?;
    for (_, path) in files.iter().rev() {
        let bytes =
            std::fs::read(path).map_err(|e| StorageError::io(StorageOp::Read, path.clone(), e))?; // mmv-lint: allow(vfs-confine) recovery-read allowlist: checkpoint load precedes the Vfs-fronted service
        let Some(body) = validate_trailer(&bytes) else {
            continue; // torn checkpoint: fall back to an older one
        };
        let parsed = parse_checkpoint(body).map_err(|detail| StorageError::Corrupt {
            file: path.clone(),
            offset: 0,
            detail,
        })?;
        return Ok(Some(parsed));
    }
    Ok(None)
}

/// Checks the `#end crc=` trailer; returns the body text when intact.
fn validate_trailer(bytes: &[u8]) -> Option<&str> {
    let text = std::str::from_utf8(bytes).ok()?;
    let idx = text.rfind("\n#end crc=")?;
    let body = &text[..idx + 1];
    let crc = text[idx + 1..]
        .trim_end()
        .strip_prefix("#end crc=")
        .and_then(|h| u32::from_str_radix(h, 16).ok())?;
    (crc32(body.as_bytes()) == crc).then_some(body)
}

fn meta_field(fields: &mut std::str::SplitWhitespace<'_>, key: &str) -> Result<String, String> {
    let field = fields.next().ok_or_else(|| format!("missing {key}="))?;
    field
        .strip_prefix(key)
        .and_then(|v| v.strip_prefix('='))
        .map(str::to_string)
        .ok_or_else(|| format!("expected {key}=, found {field:?}"))
}

fn parse_checkpoint(body: &str) -> Result<LoadedCheckpoint, String> {
    let mut lines = body.lines();
    if lines.next() != Some("#mmv-checkpoint v1") {
        return Err("bad checkpoint header".into());
    }
    let meta = lines.next().ok_or("missing meta line")?;
    let mut fields = meta.split_whitespace();
    if fields.next() != Some("meta") {
        return Err("missing meta line".into());
    }
    let epoch: u64 = meta_field(&mut fields, "epoch")?
        .parse()
        .map_err(|_| "bad epoch")?;
    let tickets: u64 = meta_field(&mut fields, "tickets")?
        .parse()
        .map_err(|_| "bad tickets")?;
    let mode = match meta_field(&mut fields, "mode")?.as_str() {
        "plain" => SupportMode::Plain,
        "supports" => SupportMode::WithSupports,
        m => return Err(format!("unknown mode {m:?}")),
    };
    let op = match meta_field(&mut fields, "op")?.as_str() {
        "tp" => Operator::Tp,
        "wp" => Operator::Wp,
        o => return Err(format!("unknown op {o:?}")),
    };
    let shard_count: usize = meta_field(&mut fields, "shards")?
        .parse()
        .map_err(|_| "bad shards")?;
    let mut shards: Vec<(u64, Vec<ParsedEntry>)> = Vec::with_capacity(shard_count);
    for line in lines {
        if let Some(rest) = line.strip_prefix("shard ") {
            let (id, epoch_field) = rest
                .split_once(' ')
                .ok_or_else(|| format!("bad shard line {line:?}"))?;
            let id: usize = id.parse().map_err(|_| format!("bad shard id {id:?}"))?;
            if id != shards.len() {
                return Err(format!("shard {id} out of order"));
            }
            let shard_epoch: u64 = epoch_field
                .strip_prefix("epoch=")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("bad shard epoch {epoch_field:?}"))?;
            shards.push((shard_epoch, Vec::new()));
        } else {
            let shard = shards
                .last_mut()
                .ok_or_else(|| format!("entry before first shard: {line:?}"))?;
            shard
                .1
                .push(parse_entry(line).map_err(|e| format!("bad entry: {e}"))?);
        }
    }
    if shards.len() != shard_count {
        return Err(format!(
            "expected {shard_count} shards, found {}",
            shards.len()
        ));
    }
    Ok(LoadedCheckpoint {
        epoch,
        tickets,
        mode,
        op,
        shards,
    })
}

/// [`prune_checkpoints_with`] through the production [`StdVfs`].
pub fn prune_checkpoints(dir: &Path, epoch: u64) -> Result<u64, StorageError> {
    prune_checkpoints_with(&StdVfs, dir, epoch)
}

/// Deletes checkpoints older than the one *preceding* `epoch` — the
/// newest and its immediate predecessor are kept (the predecessor is
/// the fallback if the newest is later found damaged).
pub fn prune_checkpoints_with(vfs: &dyn Vfs, dir: &Path, epoch: u64) -> Result<u64, StorageError> {
    let files = checkpoint_files(dir).map_err(|e| StorageError::io(StorageOp::ReadDir, dir, e))?;
    let keep_from = files
        .iter()
        .filter(|(e, _)| *e < epoch)
        .map(|(e, _)| *e)
        .next_back()
        .unwrap_or(epoch);
    let mut deleted = 0;
    for (e, path) in &files {
        if *e < keep_from {
            vfs.remove_file(path)
                .map_err(|e| StorageError::io(StorageOp::Remove, path.clone(), e))?;
            deleted += 1;
        }
    }
    if deleted > 0 {
        vfs.sync_dir(dir)
            .map_err(|e| StorageError::io(StorageOp::SyncDir, dir, e))?;
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ViewSnapshot;
    use mmv_constraints::{Constraint, Term, VarGen};
    use mmv_core::shard::{ShardMap, ShardSpec};
    use mmv_core::{ConstrainedAtom, ConstrainedDatabase, MaterializedView};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmv-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snapshot_with(n: i64, epoch: u64) -> ServiceSnapshot {
        let mut view = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(0));
        for i in 0..n {
            view.insert(
                ConstrainedAtom::new("p", vec![Term::int(i)], Constraint::truth()),
                None,
                vec![],
            );
        }
        let map = Arc::new(ShardMap::from_db(
            &ConstrainedDatabase::new(),
            &ShardSpec::single_lane(),
        ));
        ServiceSnapshot::new(epoch, vec![Arc::new(ViewSnapshot::new(epoch, view))], map)
    }

    #[test]
    fn checkpoints_round_trip_and_newest_valid_wins() {
        let dir = tmpdir("roundtrip");
        write_checkpoint(&dir, &snapshot_with(3, 5), 7, Operator::Tp).unwrap();
        write_checkpoint(&dir, &snapshot_with(4, 9), 11, Operator::Tp).unwrap();
        let loaded = load_newest(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 9);
        assert_eq!(loaded.tickets, 11);
        assert_eq!(loaded.mode, SupportMode::Plain);
        assert_eq!(loaded.op, Operator::Tp);
        assert_eq!(loaded.shards.len(), 1);
        assert_eq!(loaded.shards[0].1.len(), 4);

        // Tear the newest: loader falls back to epoch 5.
        let newest = dir.join(format!("chk-{:012}.ckpt", 9));
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() - 9]).unwrap();
        let loaded = load_newest(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.shards[0].1.len(), 3);

        // A trailer-intact but mangled body is corruption.
        let old = dir.join(format!("chk-{:012}.ckpt", 5));
        let text = std::fs::read_to_string(&old).unwrap();
        let mangled = text.replace("mode=plain", "mode=martian");
        let idx = mangled.rfind("\n#end crc=").unwrap();
        let body = &mangled[..idx + 1];
        let fixed = format!("{body}#end crc={:08x}\n", crc32(body.as_bytes()));
        std::fs::write(&newest, "").unwrap();
        std::fs::write(&old, fixed).unwrap();
        assert!(matches!(
            load_newest(&dir),
            Err(StorageError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_loads_none_and_pruning_keeps_two() {
        let dir = tmpdir("prune");
        assert!(load_newest(&dir).unwrap().is_none());
        for (n, e) in [(1, 2), (2, 4), (3, 6), (4, 8)] {
            write_checkpoint(&dir, &snapshot_with(n, e), 0, Operator::Wp).unwrap();
        }
        let deleted = prune_checkpoints(&dir, 8).unwrap();
        assert_eq!(deleted, 2, "epochs 2 and 4 go, 6 and 8 stay");
        let loaded = load_newest(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 8);
        assert_eq!(loaded.op, Operator::Wp);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
