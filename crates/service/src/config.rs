//! Service configuration: the builder-style construction API.
//!
//! [`ViewService::build`][crate::ViewService] used to take five
//! positional arguments (and its sharded variant six); every new knob
//! threatened a seventh. This module replaces that with a
//! [`ServiceConfig`] value (all knobs, all defaulted) and a
//! [`ViewServiceBuilder`] over it:
//!
//! ```
//! use mmv_service::{Durability, ViewService};
//! use mmv_core::parser::parse_program;
//!
//! let parsed = parse_program("b(X) <- X >= 5.").unwrap();
//! let svc = ViewService::builder()
//!     .build(parsed.db)
//!     .unwrap();
//! # drop(svc);
//! ```
//!
//! [`Durability`] selects the update-log backing: [`Durability::InMemory`]
//! (the pre-durability behavior — the log lives and dies with the
//! process) or [`Durability::durable`], which adds a write-ahead log
//! with group-commit fsync batching ([`crate::wal`]) and periodic
//! background checkpoints ([`crate::checkpoint`]), recoverable after a
//! crash with [`ViewService::recover`][crate::ViewService::recover].
//!
//! Both [`ServiceConfig`] and [`Durability`] are `#[non_exhaustive]`:
//! construct them through [`ServiceConfig::default`] /
//! [`Durability::durable`] and the setter methods, so future knobs are
//! not breaking changes.

use crate::health::RetryPolicy;
use crate::service::{ServiceError, SharedResolver, ViewService};
use crate::vfs::{StdVfs, StorageOp, Vfs};
use crate::wal::{FsyncPolicy, StorageError};
use mmv_constraints::NoDomains;
use mmv_core::shard::ShardSpec;
use mmv_core::tp::{FixpointConfig, Operator};
use mmv_core::{ConstrainedDatabase, SupportMode};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Where the service's update log lives: in memory, or on disk behind
/// a write-ahead log with checkpoints.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub enum Durability {
    /// In-memory log only — nothing survives the process. The default.
    #[default]
    InMemory,
    /// Durable: every applied batch is appended to a WAL under `dir`
    /// before it is published, and a background thread periodically
    /// checkpoints the whole served view so recovery replays only the
    /// log tail. Construct with [`Durability::durable`].
    #[non_exhaustive]
    Durable {
        /// The storage directory (WAL segments + checkpoints).
        dir: PathBuf,
        /// When appended frames are fsynced.
        fsync: FsyncPolicy,
        /// Checkpoint once every this many epochs (0 disables
        /// checkpointing — recovery then replays the whole WAL).
        checkpoint_every: u64,
        /// Soft cap on a WAL segment's size; appends past it rotate to
        /// a fresh segment.
        segment_bytes: u64,
        /// The filesystem all storage I/O goes through. The default
        /// ([`StdVfs`]) is the real filesystem; tests install a
        /// [`FaultVfs`][crate::FaultVfs] to inject storage faults.
        vfs: Arc<dyn Vfs>,
        /// How often the background health probe retries reopening the
        /// WAL while the service is read-only.
        probe_interval: Duration,
    },
}

impl Durability {
    /// Durable storage under `dir` with the default knobs: group
    /// commit with a zero coalescing window (the flush latency itself
    /// batches concurrent writers), a checkpoint every 256 epochs,
    /// 8 MiB segments.
    pub fn durable(dir: impl Into<PathBuf>) -> Durability {
        Durability::Durable {
            dir: dir.into(),
            fsync: FsyncPolicy::GroupCommit(Duration::ZERO),
            checkpoint_every: 256,
            segment_bytes: 8 << 20,
            vfs: Arc::new(StdVfs),
            probe_interval: Duration::from_millis(250),
        }
    }

    /// Sets the fsync policy (no-op on [`Durability::InMemory`]).
    pub fn fsync(mut self, policy: FsyncPolicy) -> Durability {
        if let Durability::Durable { fsync, .. } = &mut self {
            *fsync = policy;
        }
        self
    }

    /// Sets the checkpoint cadence in epochs, 0 to disable (no-op on
    /// [`Durability::InMemory`]).
    pub fn checkpoint_every(mut self, epochs: u64) -> Durability {
        if let Durability::Durable {
            checkpoint_every, ..
        } = &mut self
        {
            *checkpoint_every = epochs;
        }
        self
    }

    /// Sets the WAL segment size cap (no-op on
    /// [`Durability::InMemory`]).
    pub fn segment_bytes(mut self, bytes: u64) -> Durability {
        if let Durability::Durable { segment_bytes, .. } = &mut self {
            *segment_bytes = bytes;
        }
        self
    }

    /// Sets the filesystem storage I/O goes through (no-op on
    /// [`Durability::InMemory`]). The default is the real filesystem;
    /// fault-injection tests install a [`FaultVfs`][crate::FaultVfs].
    pub fn vfs(mut self, filesystem: Arc<dyn Vfs>) -> Durability {
        if let Durability::Durable { vfs, .. } = &mut self {
            *vfs = filesystem;
        }
        self
    }

    /// Sets the read-only health probe's retry cadence (no-op on
    /// [`Durability::InMemory`]).
    pub fn probe_interval(mut self, interval: Duration) -> Durability {
        if let Durability::Durable { probe_interval, .. } = &mut self {
            *probe_interval = interval;
        }
        self
    }

    /// The storage directory, when durable.
    pub fn dir(&self) -> Option<&Path> {
        match self {
            Durability::InMemory => None,
            Durability::Durable { dir, .. } => Some(dir),
        }
    }
}

/// Observability knobs: whether the service records metrics and
/// per-batch stage traces, and how many recent traces it retains.
///
/// Metrics live in a lock-free
/// [`MetricsRegistry`][mmv_obs::MetricsRegistry] and cost a handful of
/// relaxed atomic adds per batch; tracing adds a few `Instant::now`
/// calls per pipeline stage. Both are on by default. Disabling
/// observability ([`ObsOptions::disabled`]) skips the stage clocks and
/// trace ring entirely — the registry still exists (so scraping is
/// always safe) but batch-lifecycle instruments stay at zero.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ObsOptions {
    /// Record per-batch stage timings, traces, and batch counters
    /// (default: `true`).
    pub enabled: bool,
    /// How many recent [`BatchTrace`][mmv_obs::BatchTrace]s the
    /// service retains for [`recent_traces`][crate::ViewService::recent_traces]
    /// (default: 64; 0 disables the ring).
    pub trace_capacity: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            enabled: true,
            trace_capacity: 64,
        }
    }
}

impl ObsOptions {
    /// Observability off: no stage clocks, no traces, batch-lifecycle
    /// instruments stay at zero. Scraping still works.
    pub fn disabled() -> Self {
        ObsOptions {
            enabled: false,
            trace_capacity: 0,
        }
    }

    /// Sets the retained-trace capacity (0 disables the ring).
    pub fn trace_capacity(mut self, cap: usize) -> Self {
        self.trace_capacity = cap;
        self
    }
}

/// Everything that shapes a [`ViewService`], with defaults for all of
/// it. `#[non_exhaustive]`: start from [`ServiceConfig::default`] (or
/// [`ViewService::builder`]) and override fields.
#[derive(Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// The domain resolver shared across readers and writers.
    pub resolver: SharedResolver,
    /// The fixpoint operator (`T_P` or `W_P`).
    pub op: Operator,
    /// Whether view entries carry supports (StDel deletion) or not
    /// (Extended DRed).
    pub mode: SupportMode,
    /// Budgets for fixpoint computation and batch maintenance.
    pub fixpoint: FixpointConfig,
    /// The predicate → writer-lane partition.
    pub shards: ShardSpec,
    /// The update-log backing.
    pub durability: Durability,
    /// Retry budget for transient storage faults: every WAL append,
    /// fsync, and checkpoint write retries under this policy before
    /// the failure surfaces.
    pub retry: RetryPolicy,
    /// Metrics and batch-lifecycle tracing knobs.
    pub observability: ObsOptions,
    /// Worker threads in the shared intra-lane work-stealing pool
    /// (`None`: the `MMV_POOL_THREADS` environment variable if set,
    /// otherwise [`std::thread::available_parallelism`]). A resolved
    /// width of 1 disables intra-lane parallelism entirely — batches
    /// run the sequential fixpoint paths.
    pub pool_threads: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            resolver: Arc::new(NoDomains),
            op: Operator::Tp,
            mode: SupportMode::WithSupports,
            fixpoint: FixpointConfig::default(),
            shards: ShardSpec::auto(),
            durability: Durability::InMemory,
            retry: RetryPolicy::default(),
            observability: ObsOptions::default(),
            pool_threads: None,
        }
    }
}

impl fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("op", &self.op)
            .field("mode", &self.mode)
            .field("fixpoint", &self.fixpoint)
            .field("shards", &self.shards)
            .field("durability", &self.durability)
            .field("retry", &self.retry)
            .field("observability", &self.observability)
            .field("pool_threads", &self.pool_threads)
            .finish_non_exhaustive()
    }
}

/// Fluent construction of a [`ViewService`]; obtain one with
/// [`ViewService::builder`]. Every setter has a default, so
/// `ViewService::builder().build(db)` is the minimal service.
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until .build() or .recover()"]
pub struct ViewServiceBuilder {
    config: ServiceConfig,
}

impl ViewServiceBuilder {
    /// A builder with every knob at its default.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts from an existing configuration.
    pub fn from_config(config: ServiceConfig) -> Self {
        ViewServiceBuilder { config }
    }

    /// Sets the shared domain resolver (default: no domains).
    pub fn resolver(mut self, resolver: SharedResolver) -> Self {
        self.config.resolver = resolver;
        self
    }

    /// Sets the fixpoint operator (default: [`Operator::Tp`]).
    pub fn operator(mut self, op: Operator) -> Self {
        self.config.op = op;
        self
    }

    /// Sets the support mode (default:
    /// [`SupportMode::WithSupports`]).
    pub fn mode(mut self, mode: SupportMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the fixpoint budgets (default:
    /// [`FixpointConfig::default`]).
    pub fn fixpoint(mut self, fixpoint: FixpointConfig) -> Self {
        self.config.fixpoint = fixpoint;
        self
    }

    /// Sets the writer-lane layout (default: [`ShardSpec::auto`], one
    /// lane per clause dependency component).
    pub fn shards(mut self, spec: ShardSpec) -> Self {
        self.config.shards = spec;
        self
    }

    /// Sets the update-log backing (default:
    /// [`Durability::InMemory`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.config.durability = durability;
        self
    }

    /// Sets the transient-fault retry policy (default:
    /// [`RetryPolicy::default`] — 4 retries, exponential backoff).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Sets the observability knobs (default: [`ObsOptions::default`]
    /// — metrics and tracing on, 64 retained traces).
    pub fn observability(mut self, obs: ObsOptions) -> Self {
        self.config.observability = obs;
        self
    }

    /// Sets the shared work-stealing pool width (default: the
    /// `MMV_POOL_THREADS` environment variable if set, otherwise
    /// [`std::thread::available_parallelism`]). Width 1 disables
    /// intra-lane parallelism.
    pub fn pool_threads(mut self, threads: usize) -> Self {
        self.config.pool_threads = Some(threads);
        self
    }

    /// The assembled configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Builds the service over `db`: computes the initial fixpoint,
    /// partitions it into writer lanes, publishes epoch 0 — and, when
    /// durable, opens the WAL (the directory must hold no earlier
    /// state; recover from that instead).
    pub fn build(self, db: ConstrainedDatabase) -> Result<ViewService, ServiceError> {
        ViewService::with_config(db, self.config)
    }

    /// Recovers the service from the durable directory configured via
    /// [`ViewServiceBuilder::durability`]: loads the newest valid
    /// checkpoint, replays the WAL tail, and reopens for appending.
    /// Fails with [`ServiceError::Storage`] if the configuration is
    /// not durable.
    pub fn recover(
        self,
        db: ConstrainedDatabase,
    ) -> Result<(ViewService, RecoveryReport), ServiceError> {
        let Some(dir) = self.config.durability.dir().map(Path::to_path_buf) else {
            return Err(ServiceError::Storage(StorageError::io(
                StorageOp::ReadDir,
                "<no durable dir>",
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "recover() needs Durability::durable(dir)",
                ),
            )));
        };
        ViewService::recover(&dir, db, self.config)
    }
}

/// What [`ViewService::recover`] found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryReport {
    /// The global epoch of the checkpoint recovery started from
    /// (`None`: no valid checkpoint — the whole WAL was replayed onto
    /// a freshly built view).
    pub checkpoint_epoch: Option<u64>,
    /// Batch records replayed from the WAL tail.
    pub replayed_records: u64,
    /// The global epoch of the recovered, re-published state.
    pub recovered_epoch: u64,
    /// Whether the final WAL segment ended in a torn frame (dropped
    /// and truncated per the torn-tail contract).
    pub torn_tail: bool,
    /// WAL segments scanned.
    pub segments_scanned: u64,
}
