//! Function-behaviour deltas between time points: the paper's
//! `f+_{t,t+1}` and `f-_{t,t+1}` (Section 4, equations (6) and (7)).
//!
//! The tracker snapshots the results of a set of monitored calls at time
//! `t`; after the external domains change, [`DeltaTracker::delta`] reports
//! exactly which values appeared (`plus`) and disappeared (`minus`) per
//! call. The paper uses these sets to *analyse* the effect of external
//! updates on a `T_P`-materialized view (the `ADD`/`REM` sets); the `W_P`
//! strategy never needs them — which experiment E4 quantifies.

use crate::manager::DomainManager;
use mmv_constraints::{DomainResolver, Value, ValueSet};
use std::collections::BTreeSet;

/// A monitored ground call.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroundCall {
    /// Domain name.
    pub domain: String,
    /// Function name.
    pub func: String,
    /// Ground arguments.
    pub args: Vec<Value>,
}

impl GroundCall {
    /// Builds a monitored call.
    pub fn new(domain: &str, func: &str, args: Vec<Value>) -> Self {
        GroundCall {
            domain: domain.to_string(),
            func: func.to_string(),
            args,
        }
    }
}

/// The behavioural difference of one call between two time points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallDelta {
    /// The call.
    pub call: GroundCall,
    /// `f_{t+1}(args) - f_t(args)` — values that appeared.
    pub plus: BTreeSet<Value>,
    /// `f_t(args) - f_{t+1}(args)` — values that disappeared.
    pub minus: BTreeSet<Value>,
}

impl CallDelta {
    /// Whether the behaviour changed at all.
    pub fn is_empty(&self) -> bool {
        self.plus.is_empty() && self.minus.is_empty()
    }
}

/// Snapshots monitored call results and computes deltas.
#[derive(Debug, Default)]
pub struct DeltaTracker {
    snapshot: Vec<(GroundCall, Option<BTreeSet<Value>>)>,
}

/// Materializes a value set when finite (infinite symbolic sets — e.g.
/// `arith:great` ranges — cannot change behaviour, being pure).
fn materialize(set: &ValueSet, limit: usize) -> Option<BTreeSet<Value>> {
    set.enumerate(limit).map(|v| v.into_iter().collect())
}

impl DeltaTracker {
    /// Creates a tracker with no monitored calls.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the current results of `calls` against `manager`
    /// ("time t").
    pub fn snapshot(manager: &DomainManager, calls: Vec<GroundCall>) -> Self {
        let snapshot = calls
            .into_iter()
            .map(|c| {
                let set = manager.resolve(&c.domain, &c.func, &c.args);
                let mat = materialize(&set, 100_000);
                (c, mat)
            })
            .collect();
        DeltaTracker { snapshot }
    }

    /// Computes the per-call deltas between the snapshot time and now
    /// ("time t+1"). Calls whose results could not be finitely
    /// materialized are skipped (pure symbolic sets).
    pub fn delta(&self, manager: &DomainManager) -> Vec<CallDelta> {
        let mut out = Vec::new();
        for (call, old) in &self.snapshot {
            let Some(old) = old else { continue };
            let now = manager.resolve(&call.domain, &call.func, &call.args);
            let Some(new) = materialize(&now, 100_000) else {
                continue;
            };
            let plus: BTreeSet<Value> = new.difference(old).cloned().collect();
            let minus: BTreeSet<Value> = old.difference(&new).cloned().collect();
            out.push(CallDelta {
                call: call.clone(),
                plus,
                minus,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::face::FacePackage;
    use std::sync::Arc;

    #[test]
    fn photo_growth_shows_up_in_plus() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[7]);
        let mut m = DomainManager::new();
        m.register(Arc::new(pkg.extract_domain()));

        let call = GroundCall::new("facextract", "segmentface", vec![Value::str("sv")]);
        let tracker = DeltaTracker::snapshot(&m, vec![call]);

        pkg.add_photo("sv", "img2", &[9]);
        let deltas = tracker.delta(&m);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].plus.len(), 1);
        assert!(deltas[0].minus.is_empty());
    }

    #[test]
    fn photo_removal_shows_up_in_minus() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[7]);
        pkg.add_photo("sv", "img2", &[9]);
        let mut m = DomainManager::new();
        m.register(Arc::new(pkg.extract_domain()));

        let call = GroundCall::new("facextract", "segmentface", vec![Value::str("sv")]);
        let tracker = DeltaTracker::snapshot(&m, vec![call]);

        pkg.remove_photo("sv", "img1");
        let deltas = tracker.delta(&m);
        assert_eq!(deltas[0].minus.len(), 1);
        assert!(deltas[0].plus.is_empty());
    }

    #[test]
    fn unchanged_call_has_empty_delta() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[7]);
        let mut m = DomainManager::new();
        m.register(Arc::new(pkg.extract_domain()));
        let call = GroundCall::new("facextract", "segmentface", vec![Value::str("sv")]);
        let tracker = DeltaTracker::snapshot(&m, vec![call]);
        assert!(tracker.delta(&m)[0].is_empty());
    }
}
