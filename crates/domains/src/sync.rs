//! Poison-recovering lock guards shared by every domain.
//!
//! A domain's store lock is poisoned when a thread panics while holding
//! it — for these domains that means a panicking *caller* (a worker
//! thread torn down mid-batch), not a torn store: every mutation here
//! is apply-then-bump over plain maps and vectors, whose individual
//! operations contain no user code that can unwind. Propagating the
//! poison would turn one dead writer into a permanently bricked domain
//! for every later reader — exactly the failure mode PR 5 removed from
//! the service's writer lanes. These helpers clear the poison and hand
//! back the guard instead, mirroring `mmv-service`'s per-lane recovery
//! discipline (and the sensors fix in `mmv-bench`).

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks `lock`, clearing a poison flag left by a panicked writer.
pub(crate) fn read_clean<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    match lock.read() {
        Ok(g) => g,
        Err(p) => {
            lock.clear_poison();
            p.into_inner()
        }
    }
}

/// Write side of [`read_clean`], same recovery.
pub(crate) fn write_clean<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    match lock.write() {
        Ok(g) => g,
        Err(p) => {
            lock.clear_poison();
            p.into_inner()
        }
    }
}

/// [`read_clean`] for a `Mutex`.
pub(crate) fn lock_clean<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    match lock.lock() {
        Ok(g) => g,
        Err(p) => {
            lock.clear_poison();
            p.into_inner()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    fn poison<T: Send + Sync + 'static>(lock: Arc<RwLock<T>>) {
        let _ = std::thread::spawn(move || {
            let _g = lock.write();
            panic!("poison the lock");
        })
        .join();
    }

    #[test]
    fn rwlock_guards_recover_from_poison() {
        let lock = Arc::new(RwLock::new(7));
        poison(Arc::clone(&lock));
        assert!(lock.is_poisoned());
        assert_eq!(*read_clean(&lock), 7);
        assert!(!lock.is_poisoned());
        *write_clean(&lock) = 8;
        assert_eq!(*read_clean(&lock), 8);
    }

    #[test]
    fn mutex_guard_recovers_from_poison() {
        let lock = Arc::new(Mutex::new(vec![1, 2]));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison the mutex");
        })
        .join();
        assert!(lock.is_poisoned());
        lock_clean(&lock).push(3);
        assert!(!lock.is_poisoned());
        assert_eq!(*lock_clean(&lock), vec![1, 2, 3]);
    }
}
