//! Relational domains: the stand-ins for the paper's PARADOX and DBASE
//! systems. A relational domain wraps a shared [`Catalog`] and exposes the
//! select/project calls the paper's mediator clauses use, e.g.
//! `in(A, paradox:select_eq('phonebook', "name", X))`.

use crate::manager::Domain;
use crate::sync::read_clean;
use mmv_constraints::{Value, ValueSet};
use mmv_storage::Catalog;
use std::sync::{Arc, RwLock};

/// A relational database exposed as a mediator domain. Several domains
/// (e.g. `paradox` and `dbase`) may wrap distinct catalogs, mirroring the
/// paper's two separate relational systems.
pub struct RelationalDomain {
    name: String,
    catalog: Arc<RwLock<Catalog>>,
}

impl RelationalDomain {
    /// Wraps `catalog` as the domain called `name`.
    pub fn new(name: &str, catalog: Arc<RwLock<Catalog>>) -> Self {
        RelationalDomain {
            name: name.to_string(),
            catalog,
        }
    }

    /// The shared catalog handle (for mutation by tests/benchmarks).
    pub fn catalog(&self) -> Arc<RwLock<Catalog>> {
        self.catalog.clone()
    }
}

fn str_arg(args: &[Value], i: usize) -> Option<&str> {
    args.get(i).and_then(|v| v.as_str())
}

impl Domain for RelationalDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        let catalog = read_clean(&self.catalog);
        match func {
            // select_eq(table, column, key) -> the matching row records.
            "select_eq" => {
                let (Some(table), Some(col), Some(key)) =
                    (str_arg(args, 0), str_arg(args, 1), args.get(2))
                else {
                    return ValueSet::Empty;
                };
                match catalog.table(table) {
                    Ok(t) => ValueSet::finite(t.select_eq(col, key)),
                    Err(_) => ValueSet::Empty,
                }
            }
            // select_proj_eq(table, column, key, out_column) -> projected values.
            "select_proj_eq" => {
                let (Some(table), Some(col), Some(key), Some(out)) = (
                    str_arg(args, 0),
                    str_arg(args, 1),
                    args.get(2),
                    str_arg(args, 3),
                ) else {
                    return ValueSet::Empty;
                };
                match catalog.table(table) {
                    Ok(t) => ValueSet::finite(
                        t.select_eq(col, key)
                            .iter()
                            .filter_map(|r| r.field(out).cloned()),
                    ),
                    Err(_) => ValueSet::Empty,
                }
            }
            // tuples(table) -> every row record.
            "tuples" => {
                let Some(table) = str_arg(args, 0) else {
                    return ValueSet::Empty;
                };
                match catalog.table(table) {
                    Ok(t) => ValueSet::finite(t.scan().map(|(_, r)| r.clone())),
                    Err(_) => ValueSet::Empty,
                }
            }
            // project(table, column) -> that column's values.
            "project" => {
                let (Some(table), Some(col)) = (str_arg(args, 0), str_arg(args, 1)) else {
                    return ValueSet::Empty;
                };
                match catalog.table(table) {
                    Ok(t) => ValueSet::finite(t.project(col)),
                    Err(_) => ValueSet::Empty,
                }
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        read_clean(&self.catalog).version()
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["select_eq", "select_proj_eq", "tuples", "project"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_storage::{ColumnType, Schema};

    fn setup() -> (RelationalDomain, Arc<RwLock<Catalog>>) {
        let mut cat = Catalog::new();
        cat.create_table(
            "phonebook",
            Schema::new(vec![("name", ColumnType::Str), ("city", ColumnType::Str)]),
        )
        .unwrap();
        cat.insert("phonebook", &[Value::str("john smith"), Value::str("dc")])
            .unwrap();
        cat.insert("phonebook", &[Value::str("jane doe"), Value::str("nyc")])
            .unwrap();
        let cat = Arc::new(RwLock::new(cat));
        (RelationalDomain::new("paradox", cat.clone()), cat)
    }

    #[test]
    fn select_eq_returns_records() {
        let (d, _) = setup();
        let s = d.call(
            "select_eq",
            &[
                Value::str("phonebook"),
                Value::str("name"),
                Value::str("john smith"),
            ],
        );
        let rows = s.enumerate(10).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].field("city"), Some(&Value::str("dc")));
    }

    #[test]
    fn version_tracks_catalog() {
        let (d, cat) = setup();
        let v0 = d.version();
        cat.write()
            .unwrap()
            .insert("phonebook", &[Value::str("x"), Value::str("y")])
            .unwrap();
        assert!(d.version() > v0);
    }

    #[test]
    fn projection_call() {
        let (d, _) = setup();
        let s = d.call("project", &[Value::str("phonebook"), Value::str("city")]);
        assert!(s.contains(&Value::str("dc")));
        assert!(s.contains(&Value::str("nyc")));
        assert_eq!(s.finite_len(), Some(2));
    }

    #[test]
    fn select_proj_eq_projects() {
        let (d, _) = setup();
        let s = d.call(
            "select_proj_eq",
            &[
                Value::str("phonebook"),
                Value::str("name"),
                Value::str("jane doe"),
                Value::str("city"),
            ],
        );
        assert_eq!(s, ValueSet::singleton(Value::str("nyc")));
    }

    #[test]
    fn bad_table_or_args_empty() {
        let (d, _) = setup();
        assert!(d
            .call(
                "select_eq",
                &[Value::str("ghost"), Value::str("x"), Value::int(1)]
            )
            .is_empty());
        assert!(d.call("tuples", &[Value::int(9)]).is_empty());
    }
}
