//! A text/file domain: the stand-in for the paper's "(structured) files"
//! and text-database sources. Documents are registered in memory; the
//! domain exposes keyword search and membership predicates.

use crate::manager::Domain;
use crate::sync::{read_clean, write_clean};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Value, ValueSet};
use std::sync::RwLock;

#[derive(Default)]
struct DocStore {
    docs: FxHashMap<String, String>,
    /// Inverted index: word -> document names.
    inverted: FxHashMap<String, Vec<String>>,
    version: u64,
}

/// The `textdb` domain.
pub struct TextDomain {
    store: RwLock<DocStore>,
}

impl Default for TextDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl TextDomain {
    /// An empty text database.
    pub fn new() -> Self {
        TextDomain {
            store: RwLock::new(DocStore::default()),
        }
    }

    /// Registers (or replaces) a document and indexes its words.
    pub fn add_doc(&self, name: &str, content: &str) {
        let mut s = write_clean(&self.store);
        if s.docs.contains_key(name) {
            // Drop stale index entries for a replaced document.
            for names in s.inverted.values_mut() {
                names.retain(|n| n != name);
            }
        }
        for word in content.split_whitespace() {
            let w = word.to_lowercase();
            let names = s.inverted.entry(w).or_default();
            if !names.iter().any(|n| n == name) {
                names.push(name.to_string());
            }
        }
        s.docs.insert(name.to_string(), content.to_string());
        s.version += 1;
    }
}

fn str_arg(args: &[Value], i: usize) -> Option<&str> {
    args.get(i).and_then(|v| v.as_str())
}

impl Domain for TextDomain {
    fn name(&self) -> &str {
        "textdb"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        let s = read_clean(&self.store);
        match func {
            // contains(doc, word) -> {true} iff the word occurs.
            "contains" => {
                let (Some(doc), Some(word)) = (str_arg(args, 0), str_arg(args, 1)) else {
                    return ValueSet::Empty;
                };
                match s.inverted.get(&word.to_lowercase()) {
                    Some(names) if names.iter().any(|n| n == doc) => {
                        ValueSet::singleton(Value::Bool(true))
                    }
                    _ => ValueSet::Empty,
                }
            }
            // docs_with(word) -> names of documents containing the word.
            "docs_with" => {
                let Some(word) = str_arg(args, 0) else {
                    return ValueSet::Empty;
                };
                match s.inverted.get(&word.to_lowercase()) {
                    Some(names) => ValueSet::finite(names.iter().map(|n| Value::str(n))),
                    None => ValueSet::Empty,
                }
            }
            // word_count(doc) -> {number of words}.
            "word_count" => {
                let Some(doc) = str_arg(args, 0) else {
                    return ValueSet::Empty;
                };
                match s.docs.get(doc) {
                    Some(c) => ValueSet::singleton(Value::Int(c.split_whitespace().count() as i64)),
                    None => ValueSet::Empty,
                }
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        read_clean(&self.store).version
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["contains", "docs_with", "word_count"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_search() {
        let d = TextDomain::new();
        d.add_doc("report1", "suspect seen near the docks");
        d.add_doc("report2", "nothing to report");
        let s = d.call("docs_with", &[Value::str("suspect")]);
        assert_eq!(s, ValueSet::singleton(Value::str("report1")));
        assert!(!d
            .call("contains", &[Value::str("report1"), Value::str("DOCKS")])
            .is_empty());
        assert!(d
            .call("contains", &[Value::str("report2"), Value::str("docks")])
            .is_empty());
    }

    #[test]
    fn word_count_and_versioning() {
        let d = TextDomain::new();
        let v0 = d.version();
        d.add_doc("a", "one two three");
        assert!(d.version() > v0);
        assert_eq!(
            d.call("word_count", &[Value::str("a")]),
            ValueSet::singleton(Value::int(3))
        );
    }

    #[test]
    fn replacing_doc_reindexes() {
        let d = TextDomain::new();
        d.add_doc("a", "alpha beta");
        d.add_doc("a", "gamma");
        assert!(d.call("docs_with", &[Value::str("alpha")]).is_empty());
        assert!(!d.call("docs_with", &[Value::str("gamma")]).is_empty());
    }

    #[test]
    fn poisoned_doc_lock_recovers() {
        use std::sync::Arc;
        let d = Arc::new(TextDomain::new());
        d.add_doc("a", "alpha beta");
        let d2 = d.clone();
        let _ = std::thread::spawn(move || {
            let _g = d2.store.write().unwrap();
            panic!("poison the doc lock");
        })
        .join();
        assert!(d.store.is_poisoned());
        let v0 = d.version();
        d.add_doc("b", "gamma");
        assert!(d.version() > v0);
        assert!(!d.call("docs_with", &[Value::str("alpha")]).is_empty());
        assert!(!d.call("docs_with", &[Value::str("gamma")]).is_empty());
    }
}
