//! The domain manager: the mediator's gateway to external systems.
//!
//! A *domain* (paper §2.1) abstracts a database or software package: a set
//! of data objects Σ, functions F over them, and relations. The mediator
//! only ever observes a domain through domain calls
//! `domainname:function(args)` whose results are coerced to sets — the
//! [`ValueSet`] returned by [`Domain::call`].
//!
//! The manager implements [`DomainResolver`], so constraint solving and
//! `[·]`-instance evaluation can be run "at the current time point";
//! domain mutations change later resolutions, which is exactly the
//! function-behaviour-over-time model (`d:f_t`) of Section 4.

use crate::sync::lock_clean;
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{DomainResolver, Value, ValueSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An external system exposed to the mediator as a named set of functions.
pub trait Domain: Send + Sync {
    /// The domain's name (the `domainname` in a domain call).
    fn name(&self) -> &str;

    /// Executes `func(args)` and coerces the result to a set.
    ///
    /// Unknown functions and ill-typed arguments yield the empty set: a
    /// DCA-atom over them is simply unsolvable, mirroring the paper's
    /// treatment of constraints as satisfied-or-not.
    fn call(&self, func: &str, args: &[Value]) -> ValueSet;

    /// A monotone version: bumped whenever the behaviour of any function
    /// of this domain changes (e.g. the underlying table was updated).
    /// Pure, immutable domains may always return 0.
    fn version(&self) -> u64 {
        0
    }

    /// The function names this domain exposes (for diagnostics).
    fn functions(&self) -> Vec<&'static str> {
        Vec::new()
    }
}

type CacheKey = (Arc<str>, Arc<str>, Vec<Value>);

/// Statistics counters for domain-call traffic (used by the experiment
/// harnesses to report query-time evaluation cost).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CallStats {
    /// Calls answered from the memo cache.
    pub cache_hits: u64,
    /// Calls executed against a domain.
    pub misses: u64,
    /// Calls naming an unregistered domain.
    pub unknown_domain: u64,
}

/// Registry of domains plus a per-version memo cache for call results.
pub struct DomainManager {
    domains: FxHashMap<Arc<str>, Arc<dyn Domain>>,
    cache: Mutex<FxHashMap<CacheKey, (u64, ValueSet)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    unknown: AtomicU64,
}

impl Default for DomainManager {
    fn default() -> Self {
        Self::new()
    }
}

impl DomainManager {
    /// An empty manager.
    pub fn new() -> Self {
        DomainManager {
            domains: FxHashMap::default(),
            cache: Mutex::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            unknown: AtomicU64::new(0),
        }
    }

    /// Registers a domain under its own name, replacing any previous
    /// domain of the same name.
    pub fn register(&mut self, domain: Arc<dyn Domain>) {
        self.domains.insert(Arc::from(domain.name()), domain);
    }

    /// Looks up a domain by name.
    pub fn domain(&self, name: &str) -> Option<&Arc<dyn Domain>> {
        self.domains.get(name)
    }

    /// Registered domain names, sorted.
    pub fn domain_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.domains.keys().map(|k| k.as_ref()).collect();
        names.sort_unstable();
        names
    }

    /// The sum of all domain versions: a logical clock that advances
    /// whenever any external system changes.
    pub fn clock(&self) -> u64 {
        self.domains.values().map(|d| d.version()).sum()
    }

    /// Call-traffic counters since construction (or the last reset).
    pub fn stats(&self) -> CallStats {
        CallStats {
            cache_hits: self.hits.load(Ordering::Relaxed), // order: traffic tally; cross-counter tearing is fine in a stats snapshot
            misses: self.misses.load(Ordering::Relaxed), // order: traffic tally; cross-counter tearing is fine in a stats snapshot
            unknown_domain: self.unknown.load(Ordering::Relaxed), // order: traffic tally; cross-counter tearing is fine in a stats snapshot
        }
    }

    /// Zeroes the call-traffic counters.
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed); // order: stats reset is advisory; no reader depends on cross-counter order
        self.misses.store(0, Ordering::Relaxed); // order: stats reset is advisory; no reader depends on cross-counter order
        self.unknown.store(0, Ordering::Relaxed); // order: stats reset is advisory; no reader depends on cross-counter order
    }

    /// Drops all memoized call results.
    pub fn clear_cache(&self) {
        lock_clean(&self.cache).clear();
    }
}

impl DomainResolver for DomainManager {
    fn resolve(&self, domain: &str, func: &str, args: &[Value]) -> ValueSet {
        let Some((dname, d)) = self.domains.get_key_value(domain) else {
            self.unknown.fetch_add(1, Ordering::Relaxed); // order: monotonic traffic counter; no ordering with the lookup it counts
            return ValueSet::Empty;
        };
        let version = d.version();
        let key: CacheKey = (dname.clone(), Arc::from(func), args.to_vec());
        // The memo cache recovers from poison like every domain lock
        // (see [`crate::sync`]): each cache mutation is one `HashMap`
        // operation, so a recovered cache is structurally sound — at
        // worst it is missing an entry the panicked caller never
        // finished inserting, and a miss just re-executes the call.
        {
            let cache = lock_clean(&self.cache);
            if let Some((v, set)) = cache.get(&key) {
                if *v == version {
                    self.hits.fetch_add(1, Ordering::Relaxed); // order: monotonic traffic counter; the cache mutex orders the data
                    return set.clone();
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed); // order: monotonic traffic counter; the cache mutex orders the data
        let set = d.call(func, args);
        lock_clean(&self.cache).insert(key, (version, set.clone()));
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    struct Fake {
        version: Counter,
        calls: Counter,
    }

    impl Domain for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn call(&self, func: &str, _args: &[Value]) -> ValueSet {
            self.calls.fetch_add(1, Ordering::Relaxed);
            match func {
                "one" => {
                    ValueSet::singleton(Value::int(self.version.load(Ordering::Relaxed) as i64))
                }
                _ => ValueSet::Empty,
            }
        }
        fn version(&self) -> u64 {
            self.version.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn cache_hits_until_version_changes() {
        let fake = Arc::new(Fake {
            version: Counter::new(0),
            calls: Counter::new(0),
        });
        let mut m = DomainManager::new();
        m.register(fake.clone());
        let a = m.resolve("fake", "one", &[]);
        let b = m.resolve("fake", "one", &[]);
        assert_eq!(a, b);
        assert_eq!(fake.calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.stats().cache_hits, 1);
        // Version bump invalidates.
        fake.version.fetch_add(1, Ordering::Relaxed);
        let c = m.resolve("fake", "one", &[]);
        assert_ne!(a, c);
        assert_eq!(fake.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unknown_domain_is_empty() {
        let m = DomainManager::new();
        assert_eq!(m.resolve("ghost", "f", &[]), ValueSet::Empty);
        assert_eq!(m.stats().unknown_domain, 1);
    }

    #[test]
    fn clock_sums_versions() {
        let fake = Arc::new(Fake {
            version: Counter::new(3),
            calls: Counter::new(0),
        });
        let mut m = DomainManager::new();
        m.register(fake);
        assert_eq!(m.clock(), 3);
    }

    #[test]
    fn poisoned_cache_lock_recovers() {
        let fake = Arc::new(Fake {
            version: Counter::new(0),
            calls: Counter::new(0),
        });
        let mut m = DomainManager::new();
        m.register(fake);
        let m = Arc::new(m);
        let m2 = Arc::clone(&m);
        // Poison the memo cache by panicking while holding its guard.
        let _ = std::thread::spawn(move || {
            let _g = m2.cache.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        assert!(m.cache.is_poisoned());
        // Resolution recovers the cache: misses execute, hits memoize.
        assert_eq!(m.resolve("fake", "one", &[]), m.resolve("fake", "one", &[]));
        assert_eq!(m.stats().cache_hits, 1);
        m.clear_cache();
        assert!(!m.cache.is_poisoned());
    }
}
