//! The arithmetic constraint domain of the paper's Example 2
//! (Kanellakis-style constrained databases).
//!
//! `great(X)` denotes the *infinite* set of integers greater than `X`;
//! following the paper's remark, the set is represented symbolically (an
//! integer range) rather than computed extensionally. `plus(X, Y)` returns
//! the singleton `{X + Y}`.

use crate::manager::Domain;
use mmv_constraints::{Value, ValueSet};

/// The `arith` domain. Pure and immutable: its version is always 0, so
/// `W_P` views over it never need revalidation.
#[derive(Debug, Default, Clone, Copy)]
pub struct ArithDomain;

fn int_arg(args: &[Value], i: usize) -> Option<i64> {
    args.get(i).and_then(|v| v.as_int())
}

impl Domain for ArithDomain {
    fn name(&self) -> &str {
        "arith"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        match func {
            // The paper's great(X): all integers > X.
            "great" | "greater" => match int_arg(args, 0) {
                Some(k) if k < i64::MAX => ValueSet::ints_from(k + 1),
                _ => ValueSet::Empty,
            },
            "geq" => match int_arg(args, 0) {
                Some(k) => ValueSet::ints_from(k),
                None => ValueSet::Empty,
            },
            "less" => match int_arg(args, 0) {
                Some(k) if k > i64::MIN => ValueSet::ints_to(k - 1),
                _ => ValueSet::Empty,
            },
            "leq" => match int_arg(args, 0) {
                Some(k) => ValueSet::ints_to(k),
                None => ValueSet::Empty,
            },
            "between" => match (int_arg(args, 0), int_arg(args, 1)) {
                (Some(lo), Some(hi)) => ValueSet::ints_between(lo, hi),
                _ => ValueSet::Empty,
            },
            // The paper's plus(X, Y): the singleton {X + Y}.
            "plus" => match (int_arg(args, 0), int_arg(args, 1)) {
                (Some(a), Some(b)) => match a.checked_add(b) {
                    Some(s) => ValueSet::singleton(Value::Int(s)),
                    None => ValueSet::Empty,
                },
                _ => ValueSet::Empty,
            },
            "minus" => match (int_arg(args, 0), int_arg(args, 1)) {
                (Some(a), Some(b)) => match a.checked_sub(b) {
                    Some(s) => ValueSet::singleton(Value::Int(s)),
                    None => ValueSet::Empty,
                },
                _ => ValueSet::Empty,
            },
            "times" => match (int_arg(args, 0), int_arg(args, 1)) {
                (Some(a), Some(b)) => match a.checked_mul(b) {
                    Some(s) => ValueSet::singleton(Value::Int(s)),
                    None => ValueSet::Empty,
                },
                _ => ValueSet::Empty,
            },
            "abs" => match int_arg(args, 0) {
                Some(a) => match a.checked_abs() {
                    Some(s) => ValueSet::singleton(Value::Int(s)),
                    None => ValueSet::Empty,
                },
                None => ValueSet::Empty,
            },
            _ => ValueSet::Empty,
        }
    }

    fn functions(&self) -> Vec<&'static str> {
        vec![
            "great", "greater", "geq", "less", "leq", "between", "plus", "minus", "times", "abs",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn great_is_open_range() {
        let d = ArithDomain;
        let s = d.call("great", &[Value::int(3)]);
        assert!(s.contains(&Value::int(4)));
        assert!(!s.contains(&Value::int(3)));
        assert_eq!(s.finite_len(), None);
    }

    #[test]
    fn plus_singleton() {
        let d = ArithDomain;
        assert_eq!(
            d.call("plus", &[Value::int(2), Value::int(40)]),
            ValueSet::singleton(Value::int(42))
        );
    }

    #[test]
    fn between_bounds() {
        let d = ArithDomain;
        assert_eq!(
            d.call("between", &[Value::int(1), Value::int(3)]),
            ValueSet::ints_between(1, 3)
        );
        assert!(d
            .call("between", &[Value::int(3), Value::int(1)])
            .is_empty());
    }

    #[test]
    fn ill_typed_args_empty() {
        let d = ArithDomain;
        assert!(d.call("plus", &[Value::str("x"), Value::int(1)]).is_empty());
        assert!(d.call("great", &[]).is_empty());
        assert!(d.call("nonsense", &[Value::int(1)]).is_empty());
    }

    #[test]
    fn overflow_is_empty_not_panic() {
        let d = ArithDomain;
        assert!(d
            .call("plus", &[Value::int(i64::MAX), Value::int(1)])
            .is_empty());
        assert!(d.call("great", &[Value::int(i64::MAX)]).is_empty());
    }
}
