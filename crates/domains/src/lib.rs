//! # mmv-domains
//!
//! The mediator's *domain* substrate: the external systems (databases,
//! software packages) that the paper's constrained-database rules access
//! through DCA-atoms `in(X, domainname:function(args))`, plus the
//! [`DomainManager`] that resolves those calls.
//!
//! The concrete domains mirror the paper's law-enforcement mediator
//! (Example 1) and constrained-database example (Example 2):
//!
//! * [`arith::ArithDomain`] — Kanellakis-style arithmetic constraints with
//!   lazily represented infinite sets,
//! * [`relational::RelationalDomain`] — PARADOX/DBASE stand-ins over
//!   `mmv-storage` catalogs,
//! * [`spatial::SpatialDomain`] — address geocoding and range predicates,
//! * [`face::FacePackage`] — synthetic `facextract`/`facedb` package,
//! * [`text::TextDomain`] — file/text source.
//!
//! [`versioned::DeltaTracker`] computes the paper's function deltas
//! `f+`/`f-` (Section 4, equations (6)–(7)) between time points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arith;
pub mod face;
pub mod manager;
pub mod relational;
pub mod spatial;
mod sync;
pub mod text;
pub mod versioned;

pub use arith::ArithDomain;
pub use face::{FaceDbDomain, FaceExtractDomain, FaceId, FacePackage};
pub use manager::{CallStats, Domain, DomainManager};
pub use relational::RelationalDomain;
pub use spatial::SpatialDomain;
pub use text::TextDomain;
pub use versioned::{CallDelta, DeltaTracker, GroundCall};
