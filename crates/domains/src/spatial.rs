//! The spatial domain: a stand-in for the paper's "spatial data
//! management system" (`spatialdb:locateaddress`, `spatialdb:range`).
//!
//! Substitution (DESIGN.md §5): the real system geocoded addresses to map
//! coordinates. We geocode *deterministically* by hashing the address
//! fields onto a bounded grid — the mediator's observable behaviour (a
//! set-valued function from address to point, plus range predicates over
//! points) is preserved, and results are stable across runs and seeds.

use crate::manager::Domain;
use crate::sync::{read_clean, write_clean};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Value, ValueSet};
use std::hash::{Hash, Hasher};
use std::sync::RwLock;

/// Side length of the synthetic map grid (coordinates are `0..GRID`).
pub const GRID: i64 = 1000;

/// Cell size of the landmark grid index.
const CELL: i64 = 50;

/// Deterministic geocoding: hashes the address onto the grid.
fn geocode(parts: &[Value]) -> (i64, i64) {
    let mut h = mmv_constraints::fxhash::FxHasher::default();
    for p in parts {
        p.hash(&mut h);
    }
    let bits = h.finish();
    let x = (bits % GRID as u64) as i64;
    let y = ((bits >> 32) % GRID as u64) as i64;
    (x, y)
}

fn point_record(x: i64, y: i64) -> Value {
    Value::record(vec![("x", Value::Int(x)), ("y", Value::Int(y))])
}

/// Squared Euclidean distance (avoids floating point entirely).
fn dist2(x1: i64, y1: i64, x2: i64, y2: i64) -> i64 {
    let (dx, dy) = (x1 - x2, y1 - y2);
    dx * dx + dy * dy
}

#[derive(Default)]
struct MapStore {
    /// Named landmarks on each map: map -> name -> (x, y).
    maps: FxHashMap<String, FxHashMap<String, (i64, i64)>>,
    /// Grid index per map: map -> (cell_x, cell_y) -> landmark names.
    grid: FxHashMap<String, FxHashMap<(i64, i64), Vec<String>>>,
    version: u64,
}

/// The `spatialdb` domain.
pub struct SpatialDomain {
    store: RwLock<MapStore>,
}

impl Default for SpatialDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl SpatialDomain {
    /// An empty spatial domain (no maps registered).
    pub fn new() -> Self {
        SpatialDomain {
            store: RwLock::new(MapStore::default()),
        }
    }

    /// Registers (or moves) a named landmark on a map; bumps the version.
    pub fn add_landmark(&self, map: &str, name: &str, x: i64, y: i64) {
        let mut s = write_clean(&self.store);
        s.maps
            .entry(map.to_string())
            .or_default()
            .insert(name.to_string(), (x, y));
        s.grid
            .entry(map.to_string())
            .or_default()
            .entry((x.div_euclid(CELL), y.div_euclid(CELL)))
            .or_default()
            .push(name.to_string());
        s.version += 1;
    }

    /// The coordinates an address geocodes to (handy for tests that need
    /// to place landmarks near/far from an address).
    pub fn geocode_address(num: i64, street: &str, city: &str) -> (i64, i64) {
        geocode(&[Value::Int(num), Value::str(street), Value::str(city)])
    }
}

fn int_arg(args: &[Value], i: usize) -> Option<i64> {
    args.get(i).and_then(|v| v.as_int())
}

fn str_arg(args: &[Value], i: usize) -> Option<&str> {
    args.get(i).and_then(|v| v.as_str())
}

impl Domain for SpatialDomain {
    fn name(&self) -> &str {
        "spatialdb"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        match func {
            // locate_address(street_num, street_name, city) -> {point}
            "locate_address" => {
                let (Some(num), Some(street), Some(city)) =
                    (int_arg(args, 0), str_arg(args, 1), str_arg(args, 2))
                else {
                    return ValueSet::Empty;
                };
                let (x, y) = geocode(&[Value::Int(num), Value::str(street), Value::str(city)]);
                ValueSet::singleton(point_record(x, y))
            }
            // range(map, landmark, x, y, radius) -> {true} iff (x,y) lies
            // within radius of the landmark (the paper's
            // range('dcareamap', …, 100) idiom).
            "range" => {
                let (Some(map), Some(lm), Some(x), Some(y), Some(r)) = (
                    str_arg(args, 0),
                    str_arg(args, 1),
                    int_arg(args, 2),
                    int_arg(args, 3),
                    int_arg(args, 4),
                ) else {
                    return ValueSet::Empty;
                };
                let s = read_clean(&self.store);
                match s.maps.get(map).and_then(|m| m.get(lm)) {
                    Some(&(lx, ly)) if dist2(lx, ly, x, y) <= r * r => {
                        ValueSet::singleton(Value::Bool(true))
                    }
                    _ => ValueSet::Empty,
                }
            }
            // near(map, x, y, radius) -> names of landmarks within radius,
            // answered from the grid index.
            "near" => {
                let (Some(map), Some(x), Some(y), Some(r)) = (
                    str_arg(args, 0),
                    int_arg(args, 1),
                    int_arg(args, 2),
                    int_arg(args, 3),
                ) else {
                    return ValueSet::Empty;
                };
                let s = read_clean(&self.store);
                let (Some(grid), Some(points)) = (s.grid.get(map), s.maps.get(map)) else {
                    return ValueSet::Empty;
                };
                let mut found = Vec::new();
                let (clo_x, chi_x) = ((x - r).div_euclid(CELL), (x + r).div_euclid(CELL));
                let (clo_y, chi_y) = ((y - r).div_euclid(CELL), (y + r).div_euclid(CELL));
                for cx in clo_x..=chi_x {
                    for cy in clo_y..=chi_y {
                        if let Some(names) = grid.get(&(cx, cy)) {
                            for n in names {
                                if let Some(&(lx, ly)) = points.get(n) {
                                    if dist2(lx, ly, x, y) <= r * r {
                                        found.push(Value::str(n));
                                    }
                                }
                            }
                        }
                    }
                }
                ValueSet::finite(found)
            }
            // dist2(x1, y1, x2, y2) -> {squared distance}
            "dist2" => {
                let (Some(x1), Some(y1), Some(x2), Some(y2)) = (
                    int_arg(args, 0),
                    int_arg(args, 1),
                    int_arg(args, 2),
                    int_arg(args, 3),
                ) else {
                    return ValueSet::Empty;
                };
                ValueSet::singleton(Value::Int(dist2(x1, y1, x2, y2)))
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        read_clean(&self.store).version
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["locate_address", "range", "near", "dist2"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geocoding_is_deterministic() {
        let a = SpatialDomain::geocode_address(1600, "penn ave", "washington");
        let b = SpatialDomain::geocode_address(1600, "penn ave", "washington");
        let c = SpatialDomain::geocode_address(1601, "penn ave", "washington");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!((0..GRID).contains(&a.0) && (0..GRID).contains(&a.1));
    }

    #[test]
    fn locate_address_call_matches_helper() {
        let d = SpatialDomain::new();
        let s = d.call(
            "locate_address",
            &[Value::int(10), Value::str("main st"), Value::str("dc")],
        );
        let (x, y) = SpatialDomain::geocode_address(10, "main st", "dc");
        assert_eq!(s, ValueSet::singleton(point_record(x, y)));
    }

    #[test]
    fn range_predicate() {
        let d = SpatialDomain::new();
        d.add_landmark("dcareamap", "dc", 500, 500);
        let hit = d.call(
            "range",
            &[
                Value::str("dcareamap"),
                Value::str("dc"),
                Value::int(530),
                Value::int(540),
                Value::int(100),
            ],
        );
        assert_eq!(hit, ValueSet::singleton(Value::Bool(true)));
        let miss = d.call(
            "range",
            &[
                Value::str("dcareamap"),
                Value::str("dc"),
                Value::int(900),
                Value::int(900),
                Value::int(100),
            ],
        );
        assert!(miss.is_empty());
    }

    #[test]
    fn near_uses_grid_index_correctly() {
        let d = SpatialDomain::new();
        d.add_landmark("m", "a", 100, 100);
        d.add_landmark("m", "b", 120, 100);
        d.add_landmark("m", "c", 900, 900);
        let s = d.call(
            "near",
            &[
                Value::str("m"),
                Value::int(105),
                Value::int(100),
                Value::int(30),
            ],
        );
        assert!(s.contains(&Value::str("a")));
        assert!(s.contains(&Value::str("b")));
        assert!(!s.contains(&Value::str("c")));
    }

    #[test]
    fn version_bumps_on_landmark_updates() {
        let d = SpatialDomain::new();
        let v0 = d.version();
        d.add_landmark("m", "a", 1, 1);
        assert!(d.version() > v0);
    }

    #[test]
    fn poisoned_map_lock_recovers() {
        use std::sync::Arc;
        let d = Arc::new(SpatialDomain::new());
        d.add_landmark("m", "a", 100, 100);
        let d2 = d.clone();
        // Poison the store by panicking while holding the write guard.
        let _ = std::thread::spawn(move || {
            let _g = d2.store.write().unwrap();
            panic!("poison the map lock");
        })
        .join();
        assert!(d.store.is_poisoned());
        // Reads and writes keep working: the poison is cleared, not
        // propagated into every later domain call.
        let v0 = d.version();
        d.add_landmark("m", "b", 120, 100);
        assert!(d.version() > v0);
        let s = d.call(
            "near",
            &[
                Value::str("m"),
                Value::int(110),
                Value::int(100),
                Value::int(30),
            ],
        );
        assert!(s.contains(&Value::str("a")) && s.contains(&Value::str("b")));
    }
}
