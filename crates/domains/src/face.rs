//! The face-recognition domains: `facextract` and `facedb`.
//!
//! The paper's law-enforcement mediator (Example 1) calls a proprietary
//! pattern-recognition package. Substitution (DESIGN.md §5): surveillance
//! photos carry *synthetic face ids*; `segmentface` "extracts" them by
//! enumeration, producing `{file, origin}` records exactly like the
//! paper's `(<resultfile, origin>)` pairs; `matchface` compares the
//! underlying ids; `findface`/`findname` consult a mugshot registry. The
//! observable behaviour — changing set-valued functions over photo data —
//! is the same, which is all the maintenance algorithms depend on.
//!
//! Growing the photo set (`add_photo`) models the paper's update-of-the-
//! second-kind: "the surveillance data has been extended … hence the
//! domain call facextract:segmentface('surveillancedata') returns a set
//! of objects that are different from what was returned prior to the
//! update".

use crate::manager::Domain;
use crate::sync::{read_clean, write_clean};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Value, ValueSet};
use std::sync::{Arc, RwLock};

/// A synthetic face identity.
pub type FaceId = u64;

#[derive(Debug, Clone)]
struct Photo {
    name: String,
    faces: Vec<FaceId>,
}

#[derive(Debug, Default)]
struct FaceStore {
    /// Datasets of surveillance photos: dataset -> photos.
    datasets: FxHashMap<String, Vec<Photo>>,
    /// The mugshot registry: person name -> face id.
    mugshots: FxHashMap<String, FaceId>,
    /// Reverse registry: face id -> person name.
    names: FxHashMap<FaceId, String>,
    version: u64,
}

/// Shared state behind both face domains (they wrap one package in the
/// paper, so they share the photo/mugshot store here too).
#[derive(Clone, Default)]
pub struct FacePackage {
    store: Arc<RwLock<FaceStore>>,
}

/// The mugshot-file record produced by `segmentface`.
fn extraction_record(face: FaceId, origin: &str) -> Value {
    Value::record(vec![
        ("file", Value::Int(face as i64)),
        ("origin", Value::str(origin)),
    ])
}

impl FacePackage {
    /// An empty package.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a person's mugshot.
    pub fn register_person(&self, name: &str, face: FaceId) {
        let mut s = write_clean(&self.store);
        s.mugshots.insert(name.to_string(), face);
        s.names.insert(face, name.to_string());
        s.version += 1;
    }

    /// Adds a surveillance photo containing the given faces.
    pub fn add_photo(&self, dataset: &str, photo_name: &str, faces: &[FaceId]) {
        let mut s = write_clean(&self.store);
        s.datasets
            .entry(dataset.to_string())
            .or_default()
            .push(Photo {
                name: photo_name.to_string(),
                faces: faces.to_vec(),
            });
        s.version += 1;
    }

    /// Removes a photo by name; returns whether anything was removed.
    /// (Models e.g. "the photograph was a forgery".)
    pub fn remove_photo(&self, dataset: &str, photo_name: &str) -> bool {
        let mut s = write_clean(&self.store);
        let Some(photos) = s.datasets.get_mut(dataset) else {
            return false;
        };
        let before = photos.len();
        photos.retain(|p| p.name != photo_name);
        let removed = photos.len() != before;
        if removed {
            s.version += 1;
        }
        removed
    }

    /// Number of photos currently in a dataset.
    pub fn photo_count(&self, dataset: &str) -> usize {
        read_clean(&self.store)
            .datasets
            .get(dataset)
            .map_or(0, |p| p.len())
    }

    /// The `facextract` domain view of this package.
    pub fn extract_domain(&self) -> FaceExtractDomain {
        FaceExtractDomain {
            package: self.clone(),
        }
    }

    /// The `facedb` domain view of this package.
    pub fn db_domain(&self) -> FaceDbDomain {
        FaceDbDomain {
            package: self.clone(),
        }
    }
}

/// The `facextract` domain: face segmentation and matching.
pub struct FaceExtractDomain {
    package: FacePackage,
}

fn str_arg(args: &[Value], i: usize) -> Option<&str> {
    args.get(i).and_then(|v| v.as_str())
}

/// Pulls the face id out of either an extraction record or a bare int.
fn face_of(v: &Value) -> Option<FaceId> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        Value::Record(_) => v
            .field("file")
            .and_then(|f| f.as_int())
            .and_then(|i| u64::try_from(i).ok()),
        _ => None,
    }
}

impl Domain for FaceExtractDomain {
    fn name(&self) -> &str {
        "facextract"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        let s = read_clean(&self.package.store);
        match func {
            // segmentface(dataset) -> {file, origin} records for every
            // face in every photo of the dataset.
            "segmentface" => {
                let Some(dataset) = str_arg(args, 0) else {
                    return ValueSet::Empty;
                };
                let Some(photos) = s.datasets.get(dataset) else {
                    return ValueSet::Empty;
                };
                ValueSet::finite(
                    photos
                        .iter()
                        .flat_map(|p| p.faces.iter().map(move |&f| extraction_record(f, &p.name))),
                )
            }
            // matchface(f1, f2) -> {true} iff the faces are the same
            // person (same synthetic id).
            "matchface" => {
                let (Some(a), Some(b)) = (
                    args.first().and_then(face_of),
                    args.get(1).and_then(face_of),
                ) else {
                    return ValueSet::Empty;
                };
                if a == b {
                    ValueSet::singleton(Value::Bool(true))
                } else {
                    ValueSet::Empty
                }
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        read_clean(&self.package.store).version
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["segmentface", "matchface"]
    }
}

/// The `facedb` domain: the mugshot registry.
pub struct FaceDbDomain {
    package: FacePackage,
}

impl Domain for FaceDbDomain {
    fn name(&self) -> &str {
        "facedb"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        let s = read_clean(&self.package.store);
        match func {
            // findface(person) -> {face id} if the person has a mugshot.
            "findface" => {
                let Some(person) = str_arg(args, 0) else {
                    return ValueSet::Empty;
                };
                match s.mugshots.get(person) {
                    Some(&f) => ValueSet::singleton(Value::Int(f as i64)),
                    None => ValueSet::Empty,
                }
            }
            // findname(face) -> {person name}.
            "findname" => {
                let Some(face) = args.first().and_then(face_of) else {
                    return ValueSet::Empty;
                };
                match s.names.get(&face) {
                    Some(n) => ValueSet::singleton(Value::str(n)),
                    None => ValueSet::Empty,
                }
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        read_clean(&self.package.store).version
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["findface", "findname"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> FacePackage {
        let p = FacePackage::new();
        p.register_person("don corleone", 1);
        p.register_person("john smith", 2);
        p.add_photo("surveillancedata", "img_001", &[1, 2]);
        p.add_photo("surveillancedata", "img_002", &[2]);
        p
    }

    #[test]
    fn segmentface_enumerates_faces_with_origins() {
        let p = setup();
        let d = p.extract_domain();
        let s = d.call("segmentface", &[Value::str("surveillancedata")]);
        let faces = s.enumerate(100).unwrap();
        assert_eq!(faces.len(), 3);
        assert!(faces
            .iter()
            .any(|f| f.field("origin") == Some(&Value::str("img_001"))));
    }

    #[test]
    fn matchface_compares_identities() {
        let p = setup();
        let d = p.extract_domain();
        let r1 = extraction_record(1, "img_001");
        let r2 = extraction_record(1, "img_009");
        let r3 = extraction_record(2, "img_001");
        assert!(!d.call("matchface", &[r1.clone(), r2]).is_empty());
        assert!(d.call("matchface", &[r1, r3]).is_empty());
    }

    #[test]
    fn mugshot_registry_roundtrip() {
        let p = setup();
        let db = p.db_domain();
        let f = db.call("findface", &[Value::str("don corleone")]);
        assert_eq!(f, ValueSet::singleton(Value::int(1)));
        let n = db.call("findname", &[Value::int(1)]);
        assert_eq!(n, ValueSet::singleton(Value::str("don corleone")));
        assert!(db.call("findface", &[Value::str("nobody")]).is_empty());
    }

    #[test]
    fn photo_growth_changes_segmentface_and_version() {
        let p = setup();
        let d = p.extract_domain();
        let before = d.call("segmentface", &[Value::str("surveillancedata")]);
        let v0 = d.version();
        p.add_photo("surveillancedata", "img_003", &[1]);
        let after = d.call("segmentface", &[Value::str("surveillancedata")]);
        assert!(d.version() > v0);
        assert_eq!(before.finite_len(), Some(3));
        assert_eq!(after.finite_len(), Some(4));
    }

    #[test]
    fn remove_photo_shrinks_results() {
        let p = setup();
        let d = p.extract_domain();
        assert!(p.remove_photo("surveillancedata", "img_002"));
        assert!(!p.remove_photo("surveillancedata", "img_002"));
        let s = d.call("segmentface", &[Value::str("surveillancedata")]);
        assert_eq!(s.finite_len(), Some(2));
    }

    #[test]
    fn poisoned_face_lock_recovers() {
        let p = setup();
        let p2 = p.clone();
        let _ = std::thread::spawn(move || {
            let _g = p2.store.write().unwrap();
            panic!("poison the face lock");
        })
        .join();
        assert!(p.store.is_poisoned());
        // Both domain views and the mutation surface keep working.
        let d = p.extract_domain();
        let before = d.version();
        p.add_photo("surveillancedata", "img_003", &[1]);
        assert!(d.version() > before);
        let s = d.call("segmentface", &[Value::str("surveillancedata")]);
        assert_eq!(s.finite_len(), Some(4));
        let db = p.db_domain();
        assert_eq!(
            db.call("findname", &[Value::int(1)]),
            ValueSet::singleton(Value::str("don corleone"))
        );
    }
}
