//! Panic-injection tests for the domains' poison recovery, at the
//! crate's public surface.
//!
//! Every domain guards its store behind a poison-recovering lock (see
//! `crates/domains/src/sync.rs`): a panic while a guard is held must
//! cost exactly the panicking caller, never brick the domain for later
//! readers — the per-lane recovery contract the service's writer lanes
//! carry (PR 5) and the bench sensors fix demonstrated (PR 8). The
//! in-file unit tests poison each private store lock directly; these
//! tests cover the two poisons reachable from *outside* the crate: an
//! external writer panicking on a shared relational catalog, and a
//! domain backend panicking under the manager's memo cache.

use mmv_constraints::{DomainResolver, Value, ValueSet};
use mmv_domains::{Domain, DomainManager, RelationalDomain};
use mmv_storage::{Catalog, ColumnType, Schema};
use std::sync::{Arc, RwLock};

#[test]
fn relational_domain_survives_an_external_catalog_writer_panic() {
    let mut cat = Catalog::new();
    cat.create_table(
        "phonebook",
        Schema::new(vec![("name", ColumnType::Str), ("city", ColumnType::Str)]),
    )
    .unwrap();
    cat.insert("phonebook", &[Value::str("john smith"), Value::str("dc")])
        .unwrap();
    let cat = Arc::new(RwLock::new(cat));
    let d = RelationalDomain::new("paradox", cat.clone());
    let v0 = d.version();
    // An *external* writer (tests and benches mutate the shared catalog
    // directly) panics while holding the write guard — the way this
    // lock gets poisoned in practice.
    let cat2 = cat.clone();
    let handle = std::thread::spawn(move || {
        let _g = cat2.write().unwrap();
        panic!("external catalog writer dies mid-critical-section");
    });
    assert!(handle.join().is_err());
    assert!(cat.is_poisoned());
    // The domain recovers the guard and keeps serving reads; the next
    // healthy writer is not blocked either.
    let s = d.call(
        "select_eq",
        &[
            Value::str("phonebook"),
            Value::str("name"),
            Value::str("john smith"),
        ],
    );
    assert_eq!(s.enumerate(10).unwrap().len(), 1);
    assert_eq!(d.version(), v0);
    cat.write()
        .unwrap()
        .insert("phonebook", &[Value::str("jane doe"), Value::str("nyc")])
        .unwrap();
    assert!(d.version() > v0);
    assert_eq!(
        d.call("project", &[Value::str("phonebook"), Value::str("city")])
            .finite_len(),
        Some(2)
    );
}

#[test]
fn manager_keeps_serving_after_a_panicking_domain_call() {
    // A registered domain whose backend panics mid-call: the manager
    // must not end up wedged (it never holds the cache lock across the
    // call), and later resolutions of healthy functions keep hitting
    // the memo cache.
    struct Bomb;
    impl Domain for Bomb {
        fn name(&self) -> &str {
            "bomb"
        }
        fn call(&self, func: &str, _args: &[Value]) -> ValueSet {
            match func {
                "ok" => ValueSet::singleton(Value::int(1)),
                _ => panic!("domain backend crashed"),
            }
        }
    }
    let mut m = DomainManager::new();
    m.register(Arc::new(Bomb));
    let m = Arc::new(m);
    assert_eq!(
        m.resolve("bomb", "ok", &[]),
        ValueSet::singleton(Value::int(1))
    );
    let m2 = Arc::clone(&m);
    let crash = std::thread::spawn(move || {
        let _ = m2.resolve("bomb", "boom", &[]);
    });
    assert!(crash.join().is_err());
    // The crashed call cost only itself.
    assert_eq!(
        m.resolve("bomb", "ok", &[]),
        ValueSet::singleton(Value::int(1))
    );
    assert!(m.stats().cache_hits >= 1);
    m.clear_cache();
    assert_eq!(
        m.resolve("bomb", "ok", &[]),
        ValueSet::singleton(Value::int(1))
    );
}
