//! The catalog: named tables, a monotone version counter, and a change
//! log. Section 4 of the paper models an update to an external database as
//! a change in the behaviour of the functions that read it, characterised
//! by the deltas `f+_{t,t+1}` and `f-_{t,t+1}` (equations (6), (7)). The
//! change log is what lets the domain layer compute those deltas between
//! any two catalog versions.

use crate::schema::{Schema, SchemaViolation};
use crate::table::{RowId, Table};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::Value;
use std::sync::Arc;

/// A monotone logical timestamp; bumped on every mutation.
pub type Version = u64;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Change {
    /// A row was inserted into `table`.
    Insert {
        /// Table name.
        table: Arc<str>,
        /// The inserted record.
        row: Value,
    },
    /// A row was deleted from `table`.
    Delete {
        /// Table name.
        table: Arc<str>,
        /// The removed record.
        row: Value,
    },
}

impl Change {
    /// The affected table's name.
    pub fn table(&self) -> &str {
        match self {
            Change::Insert { table, .. } | Change::Delete { table, .. } => table,
        }
    }
}

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The named table does not exist.
    NoSuchTable(String),
    /// A table with that name already exists.
    TableExists(String),
    /// The row violated the table's schema.
    Schema(SchemaViolation),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::NoSuchTable(n) => write!(f, "no such table {n:?}"),
            CatalogError::TableExists(n) => write!(f, "table {n:?} already exists"),
            CatalogError::Schema(v) => write!(f, "schema violation: {v}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<SchemaViolation> for CatalogError {
    fn from(v: SchemaViolation) -> Self {
        CatalogError::Schema(v)
    }
}

/// A named collection of tables with versioned change capture.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: FxHashMap<Arc<str>, Table>,
    version: Version,
    /// `(version-at-which-applied, change)` pairs, oldest first.
    log: Vec<(Version, Change)>,
}

impl Catalog {
    /// An empty catalog at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), CatalogError> {
        if self.tables.contains_key(name) {
            return Err(CatalogError::TableExists(name.to_string()));
        }
        self.tables.insert(Arc::from(name), Table::new(schema));
        Ok(())
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> Result<&Table, CatalogError> {
        self.tables
            .get(name)
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }

    /// Structural (non-row) mutation access to a table, e.g. to create an
    /// index. Row mutations must go through [`Catalog::insert`] /
    /// [`Catalog::delete_where_eq`] so the change log stays complete.
    pub fn table_config(&mut self, name: &str) -> Result<&mut Table, CatalogError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| CatalogError::NoSuchTable(name.to_string()))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(|k| k.as_ref()).collect();
        names.sort_unstable();
        names
    }

    /// Inserts a row, bumping the version and logging the change.
    pub fn insert(&mut self, table: &str, row: &[Value]) -> Result<RowId, CatalogError> {
        let name: Arc<str> = match self.tables.get_key_value(table) {
            Some((k, _)) => k.clone(),
            None => return Err(CatalogError::NoSuchTable(table.to_string())),
        };
        let t = self.tables.get_mut(&name).expect("checked above");
        let id = t.insert(row)?;
        let record = t.get(id).expect("just inserted").clone();
        self.version += 1;
        self.log.push((
            self.version,
            Change::Insert {
                table: name,
                row: record,
            },
        ));
        Ok(id)
    }

    /// Deletes rows where `col = key`, bumping the version once per
    /// removed row. Returns the removed records.
    pub fn delete_where_eq(
        &mut self,
        table: &str,
        col: &str,
        key: &Value,
    ) -> Result<Vec<Value>, CatalogError> {
        let name: Arc<str> = match self.tables.get_key_value(table) {
            Some((k, _)) => k.clone(),
            None => return Err(CatalogError::NoSuchTable(table.to_string())),
        };
        let t = self.tables.get_mut(&name).expect("checked above");
        let removed = t.delete_where_eq(col, key);
        for row in &removed {
            self.version += 1;
            self.log.push((
                self.version,
                Change::Delete {
                    table: name.clone(),
                    row: row.clone(),
                },
            ));
        }
        Ok(removed)
    }

    /// The changes applied after `since`, oldest first.
    pub fn changes_since(&self, since: Version) -> &[(Version, Change)] {
        let start = self.log.partition_point(|(v, _)| *v <= since);
        &self.log[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "phonebook",
            Schema::new(vec![("name", ColumnType::Str), ("city", ColumnType::Str)]),
        )
        .unwrap();
        c
    }

    #[test]
    fn versions_bump_on_mutation() {
        let mut c = cat();
        assert_eq!(c.version(), 0);
        c.insert("phonebook", &[Value::str("ann"), Value::str("dc")])
            .unwrap();
        assert_eq!(c.version(), 1);
        c.insert("phonebook", &[Value::str("bob"), Value::str("nyc")])
            .unwrap();
        assert_eq!(c.version(), 2);
        c.delete_where_eq("phonebook", "name", &Value::str("ann"))
            .unwrap();
        assert_eq!(c.version(), 3);
    }

    #[test]
    fn change_log_slicing() {
        let mut c = cat();
        c.insert("phonebook", &[Value::str("ann"), Value::str("dc")])
            .unwrap();
        let mid = c.version();
        c.insert("phonebook", &[Value::str("bob"), Value::str("nyc")])
            .unwrap();
        c.delete_where_eq("phonebook", "name", &Value::str("ann"))
            .unwrap();
        let changes = c.changes_since(mid);
        assert_eq!(changes.len(), 2);
        assert!(matches!(changes[0].1, Change::Insert { .. }));
        assert!(matches!(changes[1].1, Change::Delete { .. }));
        assert!(c.changes_since(c.version()).is_empty());
    }

    #[test]
    fn missing_table_errors() {
        let mut c = cat();
        assert!(matches!(
            c.insert("nope", &[Value::int(1)]),
            Err(CatalogError::NoSuchTable(_))
        ));
        assert!(matches!(c.table("nope"), Err(CatalogError::NoSuchTable(_))));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = cat();
        assert!(matches!(
            c.create_table("phonebook", Schema::new(vec![])),
            Err(CatalogError::TableExists(_))
        ));
    }

    #[test]
    fn schema_errors_do_not_bump_version() {
        let mut c = cat();
        let v = c.version();
        assert!(c.insert("phonebook", &[Value::int(5)]).is_err());
        assert_eq!(c.version(), v);
        assert!(c.changes_since(0).is_empty());
    }
}
