//! In-memory tables with tombstoned rows and optional hash indexes.
//!
//! Rows are exposed as [`Value::Record`]s so mediator rules can use the
//! HERMES field-access idiom (`A.streetnum`, `P1.origin`).

use crate::index::HashIndex;
use crate::schema::{Schema, SchemaViolation};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Record, Value};
use std::sync::Arc;

/// Identifier of a row slot within a table (stable across deletions).
pub type RowId = usize;

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    /// Row slots; `None` marks a deleted row (tombstone).
    rows: Vec<Option<Value>>,
    /// Live-row count.
    live: usize,
    /// Hash indexes by column name.
    indexes: FxHashMap<Arc<str>, HashIndex>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            indexes: FxHashMap::default(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Builds the record value for a positional row.
    fn make_record(&self, row: &[Value]) -> Value {
        let fields: Vec<(Arc<str>, Value)> = self
            .schema
            .columns()
            .zip(row)
            .map(|((n, _), v)| (Arc::from(n), v.clone()))
            .collect();
        Value::Record(Arc::new(Record::new(fields)))
    }

    /// Inserts a positional row; returns its id.
    pub fn insert(&mut self, row: &[Value]) -> Result<RowId, SchemaViolation> {
        self.schema.check_row(row)?;
        let record = self.make_record(row);
        let id = self.rows.len();
        for (col, idx) in self.indexes.iter_mut() {
            let key = record.field(col).expect("indexed column exists").clone();
            idx.add(key, id);
        }
        self.rows.push(Some(record));
        self.live += 1;
        Ok(id)
    }

    /// Deletes a row by id; returns the removed record if it was live.
    pub fn delete(&mut self, id: RowId) -> Option<Value> {
        let slot = self.rows.get_mut(id)?;
        let record = slot.take()?;
        self.live -= 1;
        for (col, idx) in self.indexes.iter_mut() {
            let key = record.field(col).expect("indexed column exists");
            idx.remove(key, id);
        }
        Some(record)
    }

    /// Deletes all rows matching `col = key`; returns the removed records.
    pub fn delete_where_eq(&mut self, col: &str, key: &Value) -> Vec<Value> {
        let ids: Vec<RowId> = self.select_ids_eq(col, key);
        ids.into_iter().filter_map(|id| self.delete(id)).collect()
    }

    /// Fetches a live row by id.
    pub fn get(&self, id: RowId) -> Option<&Value> {
        self.rows.get(id).and_then(|s| s.as_ref())
    }

    /// Iterates live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Value)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// Creates (or refreshes) a hash index on `col`.
    ///
    /// # Panics
    /// Panics if the column does not exist (static configuration error).
    pub fn create_index(&mut self, col: &str) {
        assert!(
            self.schema.position(col).is_some(),
            "no such column {col:?}"
        );
        let mut idx = HashIndex::new();
        for (id, row) in self.scan() {
            idx.add(row.field(col).expect("column exists").clone(), id);
        }
        self.indexes.insert(Arc::from(col), idx);
    }

    /// Whether an index exists on `col`.
    pub fn has_index(&self, col: &str) -> bool {
        self.indexes.contains_key(col)
    }

    /// Ids of rows where `col = key` (index-accelerated when available).
    pub fn select_ids_eq(&self, col: &str, key: &Value) -> Vec<RowId> {
        if let Some(idx) = self.indexes.get(col) {
            return idx.lookup(key).to_vec();
        }
        self.scan()
            .filter(|(_, r)| r.field(col) == Some(key))
            .map(|(id, _)| id)
            .collect()
    }

    /// Rows where `col = key`.
    pub fn select_eq(&self, col: &str, key: &Value) -> Vec<Value> {
        self.select_ids_eq(col, key)
            .into_iter()
            .filter_map(|id| self.get(id).cloned())
            .collect()
    }

    /// Rows satisfying an arbitrary predicate (always a scan).
    pub fn select_where<F: Fn(&Value) -> bool>(&self, pred: F) -> Vec<Value> {
        self.scan()
            .filter(|(_, r)| pred(r))
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// Projects a column across all live rows.
    pub fn project(&self, col: &str) -> Vec<Value> {
        self.scan()
            .filter_map(|(_, r)| r.field(col).cloned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    fn people() -> Table {
        let mut t = Table::new(Schema::new(vec![
            ("name", ColumnType::Str),
            ("age", ColumnType::Int),
        ]));
        t.insert(&[Value::str("ann"), Value::int(30)]).unwrap();
        t.insert(&[Value::str("bob"), Value::int(40)]).unwrap();
        t.insert(&[Value::str("ann"), Value::int(50)]).unwrap();
        t
    }

    #[test]
    fn insert_and_scan() {
        let t = people();
        assert_eq!(t.len(), 3);
        assert_eq!(t.scan().count(), 3);
    }

    #[test]
    fn select_eq_scan_and_index_agree() {
        let mut t = people();
        let scan_result = t.select_eq("name", &Value::str("ann"));
        t.create_index("name");
        let index_result = t.select_eq("name", &Value::str("ann"));
        assert_eq!(scan_result.len(), 2);
        assert_eq!(scan_result, index_result);
    }

    #[test]
    fn delete_updates_index() {
        let mut t = people();
        t.create_index("name");
        let removed = t.delete_where_eq("name", &Value::str("ann"));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(t.select_eq("name", &Value::str("ann")).is_empty());
        assert_eq!(t.select_eq("name", &Value::str("bob")).len(), 1);
    }

    #[test]
    fn rows_are_records_with_field_access() {
        let t = people();
        let rows = t.select_eq("name", &Value::str("bob"));
        assert_eq!(rows[0].field("age"), Some(&Value::int(40)));
    }

    #[test]
    fn schema_violation_rejected() {
        let mut t = people();
        assert!(t.insert(&[Value::int(1), Value::int(2)]).is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn insert_after_index_creation_is_indexed() {
        let mut t = people();
        t.create_index("age");
        t.insert(&[Value::str("cyd"), Value::int(40)]).unwrap();
        assert_eq!(t.select_eq("age", &Value::int(40)).len(), 2);
    }

    #[test]
    fn tombstones_keep_ids_stable() {
        let mut t = people();
        let kept = t.get(2).cloned();
        t.delete(0);
        assert_eq!(t.get(2).cloned(), kept);
        assert_eq!(t.get(0), None);
    }

    #[test]
    fn project_column() {
        let t = people();
        let ages = t.project("age");
        assert_eq!(ages, vec![Value::int(30), Value::int(40), Value::int(50)]);
    }
}
