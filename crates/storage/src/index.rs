//! Hash indexes mapping column values to row ids.

use crate::table::RowId;
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::Value;

/// A hash index over one column.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: FxHashMap<Value, Vec<RowId>>,
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `id` under `key`.
    pub fn add(&mut self, key: Value, id: RowId) {
        self.map.entry(key).or_default().push(id);
    }

    /// Unregisters `id` from `key`.
    pub fn remove(&mut self, key: &Value, id: RowId) {
        if let Some(ids) = self.map.get_mut(key) {
            ids.retain(|&x| x != id);
            if ids.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids stored under `key`.
    pub fn lookup(&self, key: &Value) -> &[RowId] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_lookup_remove() {
        let mut idx = HashIndex::new();
        idx.add(Value::int(1), 10);
        idx.add(Value::int(1), 11);
        idx.add(Value::int(2), 12);
        assert_eq!(idx.lookup(&Value::int(1)), &[10, 11]);
        assert_eq!(idx.key_count(), 2);
        idx.remove(&Value::int(1), 10);
        assert_eq!(idx.lookup(&Value::int(1)), &[11]);
        idx.remove(&Value::int(1), 11);
        assert_eq!(idx.lookup(&Value::int(1)), &[] as &[RowId]);
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn missing_key_is_empty() {
        let idx = HashIndex::new();
        assert!(idx.lookup(&Value::str("none")).is_empty());
    }
}
