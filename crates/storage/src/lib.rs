//! # mmv-storage
//!
//! In-memory relational storage backing the simulated external databases
//! of the mediated system (the paper integrates PARADOX / DBASE / INGRES
//! tables; see DESIGN.md §5 for the substitution argument).
//!
//! The storage layer provides typed tables with hash indexes, a named
//! catalog, and versioned change capture. Change capture is what the
//! domain layer uses to realize the paper's function deltas `f+`/`f-`
//! (Section 4, equations (6)–(7)).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod index;
pub mod schema;
pub mod table;

pub use catalog::{Catalog, CatalogError, Change, Version};
pub use index::HashIndex;
pub use schema::{ColumnType, Schema, SchemaViolation};
pub use table::{RowId, Table};
