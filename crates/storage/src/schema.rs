//! Table schemas: named, typed columns.

use mmv_constraints::Value;
use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integers.
    Int,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
    /// Any value kind (schema does not constrain the column).
    Any,
}

impl ColumnType {
    /// Whether `v` belongs to this column type.
    pub fn admits(self, v: &Value) -> bool {
        match self {
            ColumnType::Int => matches!(v, Value::Int(_)),
            ColumnType::Str => matches!(v, Value::Str(_)),
            ColumnType::Bool => matches!(v, Value::Bool(_)),
            ColumnType::Any => true,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Str => "str",
            ColumnType::Bool => "bool",
            ColumnType::Any => "any",
        };
        write!(f, "{s}")
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(Arc<str>, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names — schemas are static program
    /// configuration, so this is a programming error.
    pub fn new(columns: Vec<(&str, ColumnType)>) -> Self {
        let columns: Vec<(Arc<str>, ColumnType)> = columns
            .into_iter()
            .map(|(n, t)| (Arc::from(n), t))
            .collect();
        for (i, (n, _)) in columns.iter().enumerate() {
            assert!(
                columns[i + 1..].iter().all(|(m, _)| m != n),
                "duplicate column name {n:?}"
            );
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Iterates `(name, type)` pairs in declaration order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, ColumnType)> {
        self.columns.iter().map(|(n, t)| (n.as_ref(), *t))
    }

    /// The position of a column by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n.as_ref() == name)
    }

    /// The type of a column by name.
    pub fn column_type(&self, name: &str) -> Option<ColumnType> {
        self.columns
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, t)| *t)
    }

    /// Validates a positional row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), SchemaViolation> {
        if row.len() != self.arity() {
            return Err(SchemaViolation::Arity {
                expected: self.arity(),
                got: row.len(),
            });
        }
        for ((name, ty), v) in self.columns().zip(row) {
            if !ty.admits(v) {
                return Err(SchemaViolation::Type {
                    column: name.to_string(),
                    expected: ty,
                    got: v.clone(),
                });
            }
        }
        Ok(())
    }
}

/// A schema validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaViolation {
    /// Wrong number of values in the row.
    Arity {
        /// Declared column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A value did not match its column's type.
    Type {
        /// The offending column.
        column: String,
        /// The declared type.
        expected: ColumnType,
        /// The offending value.
        got: Value,
    },
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaViolation::Arity { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            SchemaViolation::Type {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} expects {expected}, got {got}"),
        }
    }
}

impl std::error::Error for SchemaViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![("name", ColumnType::Str), ("age", ColumnType::Int)])
    }

    #[test]
    fn positions_and_types() {
        let s = schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position("age"), Some(1));
        assert_eq!(s.position("zip"), None);
        assert_eq!(s.column_type("name"), Some(ColumnType::Str));
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s.check_row(&[Value::str("ann"), Value::int(30)]).is_ok());
        assert!(matches!(
            s.check_row(&[Value::str("ann")]),
            Err(SchemaViolation::Arity { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::int(1), Value::int(30)]),
            Err(SchemaViolation::Type { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    fn any_admits_everything() {
        let s = Schema::new(vec![("x", ColumnType::Any)]);
        assert!(s.check_row(&[Value::Bool(true)]).is_ok());
        assert!(s.check_row(&[Value::tuple(vec![])]).is_ok());
    }
}
