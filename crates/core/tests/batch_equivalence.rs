//! Batch maintenance ≡ sequential maintenance.
//!
//! The batched entry points ([`dred_delete_batch`], [`stdel_delete_batch`],
//! [`insert_batch`], [`apply_batch`]) must land on the same view as
//! applying the same updates one at a time.
//!
//! Two regimes, two strengths of "same":
//!
//! * **Unique-derivation workloads** (stratified chain rules over
//!   per-predicate *disjoint* interval facts): every instance has
//!   exactly one derivation, so DRed's rederivation never restores
//!   anything and the batch must reproduce the sequential view
//!   *syntactically* (same entries up to renaming).
//! * **Shared-derivation workloads** (joins, overlapping facts):
//!   sequential DRed accumulates redundant rederived entries that a
//!   single batched pass has no reason to create, so the views are
//!   compared at the *instance* level — and both are checked against
//!   the declarative [`batch_oracle`] (the least model of the rewritten
//!   database, Theorems 1–3 lifted to update sets).

use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
use mmv_core::{
    apply_batch, batch_oracle, dred_delete, dred_delete_batch, fixpoint, insert_atom, insert_batch,
    stdel_delete, stdel_delete_batch, BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase,
    FixpointConfig, MaterializedView, Operator, ParallelFixpoint, SupportMode, UpdateBatch,
    WorkerPool,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn x() -> Term {
    Term::var(Var(0))
}

/// Interval fact `pred(X) <- 20*slot <= X <= 20*slot + width` with
/// `width < 20`: facts of one predicate never overlap.
fn disjoint_fact(pred: &str, slot: i64, width: i64) -> Clause {
    let lo = 20 * slot;
    Clause::fact(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(lo + width),
        )),
    )
}

const FACT_PREDS: [&str; 2] = ["b0", "b1"];

/// A stratified chain program over disjoint facts: every derived
/// predicate has exactly one clause with exactly one body atom, so each
/// instance of the least model has a unique derivation.
fn chain_db(widths0: &[i64], widths1: &[i64], wiring: &[usize]) -> ConstrainedDatabase {
    let mut clauses: Vec<Clause> = Vec::new();
    for (slot, w) in widths0.iter().enumerate() {
        clauses.push(disjoint_fact("b0", slot as i64, *w));
    }
    for (slot, w) in widths1.iter().enumerate() {
        clauses.push(disjoint_fact("b1", slot as i64, *w));
    }
    // Layer 1 draws from the facts, each following layer from the one
    // below; `wiring` picks the body predicate per derived predicate.
    let mut below: Vec<String> = FACT_PREDS.iter().map(|p| p.to_string()).collect();
    let mut wiring = wiring.iter().copied().cycle();
    for layer in 0..2 {
        let mut current: Vec<String> = Vec::new();
        for j in 0..2 {
            let head = format!("q{layer}_{j}");
            let src = &below[wiring.next().expect("cycled") % below.len()];
            clauses.push(Clause::new(
                &head,
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new(src, vec![x()])],
            ));
            current.push(head);
        }
        below = current;
    }
    ConstrainedDatabase::from_clauses(clauses)
}

/// A shared-derivation program: overlapping facts and a join rule, so
/// instances may have several derivations.
fn sharing_db(widths: &[(i64, i64)]) -> ConstrainedDatabase {
    let mut clauses: Vec<Clause> = Vec::new();
    for (lo, w) in widths {
        clauses.push(Clause::fact(
            "b0",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(*lo)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(lo + w),
            )),
        ));
    }
    // b1 covers a fixed band; q is derivable from either fact predicate
    // (shared coverage), r joins both.
    clauses.push(Clause::fact(
        "b1",
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(40),
        )),
    ));
    for src in FACT_PREDS {
        clauses.push(Clause::new(
            "q",
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new(src, vec![x()])],
        ));
    }
    clauses.push(Clause::new(
        "r",
        vec![x()],
        Constraint::truth(),
        vec![
            BodyAtom::new("b0", vec![x()]),
            BodyAtom::new("b1", vec![x()]),
        ],
    ));
    ConstrainedDatabase::from_clauses(clauses)
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

/// Insertion interval in fresh value space (disjoint from every fact,
/// so it is genuinely new; overlaps between insertions are allowed and
/// exercised).
fn fresh_interval(pred: &str, lo: i64, w: i64) -> ConstrainedAtom {
    let lo = 1000 + lo;
    ConstrainedAtom::new(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(lo + w),
        )),
    )
}

fn build(db: &ConstrainedDatabase, mode: SupportMode) -> MaterializedView {
    fixpoint(
        db,
        &NoDomains,
        Operator::Tp,
        mode,
        &FixpointConfig::default(),
    )
    .expect("base fixpoint")
    .0
}

#[derive(Debug, Clone)]
struct Workload {
    db: ConstrainedDatabase,
    deletes: Vec<ConstrainedAtom>,
    inserts: Vec<ConstrainedAtom>,
}

fn chain_workload() -> impl Strategy<Value = Workload> {
    (
        collection::vec(0i64..15, 1..=3),
        collection::vec(0i64..15, 1..=3),
        collection::vec(0usize..4, 4..=4),
        collection::vec((0usize..2, 0i64..60), 1..=4),
        collection::vec((0usize..2, 0i64..40, 0i64..6), 0..=3),
    )
        .prop_map(|(widths0, widths1, wiring, dels, inss)| Workload {
            db: chain_db(&widths0, &widths1, &wiring),
            deletes: dels
                .into_iter()
                .map(|(p, v)| point(FACT_PREDS[p], v))
                .collect(),
            inserts: inss
                .into_iter()
                .map(|(p, lo, w)| fresh_interval(FACT_PREDS[p], lo, w))
                .collect(),
        })
}

fn sharing_workload() -> impl Strategy<Value = Workload> {
    (
        collection::vec((0i64..40, 0i64..12), 2..=4),
        collection::vec((0usize..2, 0i64..50), 1..=3),
        collection::vec((0usize..2, 0i64..40, 0i64..6), 0..=2),
    )
        .prop_map(|(widths, dels, inss)| Workload {
            db: sharing_db(&widths),
            deletes: dels
                .into_iter()
                .map(|(p, v)| point(FACT_PREDS[p], v))
                .collect(),
            inserts: inss
                .into_iter()
                .map(|(p, lo, w)| fresh_interval(FACT_PREDS[p], lo, w))
                .collect(),
        })
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// Shared pools for the thread sweep: 1, 2, and N (honoring
/// `MMV_POOL_THREADS`, at least 4) workers, built once per process.
fn sweep_pools() -> &'static [Arc<WorkerPool>] {
    static POOLS: OnceLock<Vec<Arc<WorkerPool>>> = OnceLock::new();
    POOLS.get_or_init(|| {
        let n = std::env::var("MMV_POOL_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
            .max(4);
        [1, 2, n]
            .into_iter()
            .map(|t| Arc::new(WorkerPool::new(t)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// Batched Extended DRed ≡ one-at-a-time Extended DRed on
    /// unique-derivation workloads, syntactically.
    #[test]
    fn dred_batch_matches_sequential(w in chain_workload()) {
        let cfg = FixpointConfig::default();
        let base = build(&w.db, SupportMode::Plain);
        let mut batched = base.clone();
        dred_delete_batch(&w.db, &mut batched, &w.deletes, &NoDomains, &cfg).expect("batch");
        let mut sequential = base;
        for d in &w.deletes {
            dred_delete(&w.db, &mut sequential, d, &NoDomains, &cfg).expect("sequential");
        }
        prop_assert!(
            batched.syntactically_equal(&sequential),
            "DRed diverged on\n{}\nbatched:\n{batched}\nsequential:\n{sequential}",
            w.db
        );
        // The batched path again, under the work-stealing pool at each
        // sweep width: parallel output must stay syntactically identical.
        for pool in sweep_pools() {
            let par = FixpointConfig {
                parallel: Some(ParallelFixpoint {
                    pool: Arc::clone(pool),
                    resolver: Arc::new(NoDomains),
                }),
                ..cfg.clone()
            };
            let mut parallel = build(&w.db, SupportMode::Plain);
            dred_delete_batch(&w.db, &mut parallel, &w.deletes, &NoDomains, &par)
                .expect("parallel batch");
            prop_assert!(
                parallel.syntactically_equal(&sequential),
                "DRed/pool={} diverged on\n{}\nparallel:\n{parallel}\nsequential:\n{sequential}",
                pool.threads(),
                w.db
            );
        }
    }

    /// Batched StDel ≡ one-at-a-time StDel on unique-derivation
    /// workloads, syntactically.
    #[test]
    fn stdel_batch_matches_sequential(w in chain_workload()) {
        let cfg = FixpointConfig::default();
        let base = build(&w.db, SupportMode::WithSupports);
        let mut batched = base.clone();
        stdel_delete_batch(&mut batched, &w.deletes, &NoDomains, &cfg.solver).expect("batch");
        let mut sequential = base;
        for d in &w.deletes {
            stdel_delete(&mut sequential, d, &NoDomains, &cfg.solver).expect("sequential");
        }
        prop_assert!(
            batched.syntactically_equal(&sequential),
            "StDel diverged on\n{}\nbatched:\n{batched}\nsequential:\n{sequential}",
            w.db
        );
    }

    /// Batched insertion ≡ one-at-a-time insertion, syntactically, in
    /// both support modes.
    #[test]
    fn insert_batch_matches_sequential(w in chain_workload()) {
        let cfg = FixpointConfig::default();
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let base = build(&w.db, mode);
            let mut batched = base.clone();
            insert_batch(&w.db, &mut batched, &w.inserts, &NoDomains, Operator::Tp, &cfg)
                .expect("batch");
            let mut sequential = base;
            for i in &w.inserts {
                insert_atom(&w.db, &mut sequential, i, &NoDomains, Operator::Tp, &cfg)
                    .expect("sequential");
            }
            prop_assert!(
                batched.syntactically_equal(&sequential),
                "insert/{mode:?} diverged on\n{}\nbatched:\n{batched}\nsequential:\n{sequential}",
                w.db
            );
            for pool in sweep_pools() {
                let par = FixpointConfig {
                    parallel: Some(ParallelFixpoint {
                        pool: Arc::clone(pool),
                        resolver: Arc::new(NoDomains),
                    }),
                    ..cfg.clone()
                };
                let mut parallel = build(&w.db, mode);
                insert_batch(&w.db, &mut parallel, &w.inserts, &NoDomains, Operator::Tp, &par)
                    .expect("parallel batch");
                prop_assert!(
                    parallel.syntactically_equal(&sequential),
                    "insert/{mode:?}/pool={} diverged on\n{}\n\
                     parallel:\n{parallel}\nsequential:\n{sequential}",
                    pool.threads(),
                    w.db
                );
            }
        }
    }

    /// A full transaction (deletes then inserts) through `apply_batch`
    /// ≡ the same updates applied one at a time, syntactically, in both
    /// support modes — and both match the declarative batch oracle at
    /// the instance level.
    #[test]
    fn apply_batch_matches_sequential_and_oracle(w in chain_workload()) {
        let cfg = FixpointConfig::default();
        let batch = UpdateBatch {
            deletes: w.deletes.clone(),
            inserts: w.inserts.clone(),
        };
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let base = build(&w.db, mode);
            let oracle = batch_oracle(&w.db, &base, &batch, &NoDomains, &cfg).expect("oracle");
            let mut batched = base.clone();
            apply_batch(&w.db, &mut batched, &batch, &NoDomains, Operator::Tp, &cfg)
                .expect("batch");
            let mut sequential = base;
            for d in &w.deletes {
                match mode {
                    SupportMode::Plain => {
                        dred_delete(&w.db, &mut sequential, d, &NoDomains, &cfg).expect("dred");
                    }
                    SupportMode::WithSupports => {
                        stdel_delete(&mut sequential, d, &NoDomains, &cfg.solver).expect("stdel");
                    }
                }
            }
            for i in &w.inserts {
                insert_atom(&w.db, &mut sequential, i, &NoDomains, Operator::Tp, &cfg)
                    .expect("insert");
            }
            prop_assert!(
                batched.syntactically_equal(&sequential),
                "apply_batch/{mode:?} diverged on\n{}\nbatched:\n{batched}\nsequential:\n{sequential}",
                w.db
            );
            prop_assert_eq!(
                batched.instances(&NoDomains, &cfg.solver).expect("instances"),
                oracle.clone(),
                "apply_batch/{:?} missed the oracle on\n{}",
                mode,
                w.db
            );
            for pool in sweep_pools() {
                let par = FixpointConfig {
                    parallel: Some(ParallelFixpoint {
                        pool: Arc::clone(pool),
                        resolver: Arc::new(NoDomains),
                    }),
                    ..cfg.clone()
                };
                let mut parallel = build(&w.db, mode);
                apply_batch(&w.db, &mut parallel, &batch, &NoDomains, Operator::Tp, &par)
                    .expect("parallel batch");
                prop_assert!(
                    parallel.syntactically_equal(&batched),
                    "apply_batch/{mode:?}/pool={} diverged on\n{}\n\
                     parallel:\n{parallel}\nbatched:\n{batched}",
                    pool.threads(),
                    w.db
                );
            }
        }
    }

    /// On shared-derivation workloads (joins, overlapping coverage),
    /// batch and sequential maintenance agree at the instance level and
    /// both match the declarative oracle, in both support modes.
    #[test]
    fn shared_derivations_agree_on_instances(w in sharing_workload()) {
        let cfg = FixpointConfig::default();
        let batch = UpdateBatch {
            deletes: w.deletes.clone(),
            inserts: w.inserts.clone(),
        };
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let base = build(&w.db, mode);
            let oracle = batch_oracle(&w.db, &base, &batch, &NoDomains, &cfg).expect("oracle");
            let mut batched = base.clone();
            apply_batch(&w.db, &mut batched, &batch, &NoDomains, Operator::Tp, &cfg)
                .expect("batch");
            let mut sequential = base;
            for d in &w.deletes {
                match mode {
                    SupportMode::Plain => {
                        dred_delete(&w.db, &mut sequential, d, &NoDomains, &cfg).expect("dred");
                    }
                    SupportMode::WithSupports => {
                        stdel_delete(&mut sequential, d, &NoDomains, &cfg.solver).expect("stdel");
                    }
                }
            }
            for i in &w.inserts {
                insert_atom(&w.db, &mut sequential, i, &NoDomains, Operator::Tp, &cfg)
                    .expect("insert");
            }
            let batched_inst = batched.instances(&NoDomains, &cfg.solver).expect("instances");
            prop_assert_eq!(
                &batched_inst,
                &sequential.instances(&NoDomains, &cfg.solver).expect("instances"),
                "batch vs sequential instances diverged ({:?}) on\n{}",
                mode,
                w.db
            );
            prop_assert_eq!(
                &batched_inst,
                &oracle,
                "batch missed the oracle ({:?}) on\n{}",
                mode,
                w.db
            );
        }
    }
}
