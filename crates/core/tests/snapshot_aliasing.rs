//! No aliasing corruption under the copy-on-write store.
//!
//! The materialized view is a handle onto structurally-shared storage:
//! cloning it is a few `Arc` bumps, and maintenance copies only the
//! pages it touches. That discipline has two things to prove, and this
//! suite proptests both over random *sequences* of batches, in both
//! support modes:
//!
//! 1. **The maintained view is right.** After every batch in the
//!    sequence, the CoW-maintained view must be syntactically equal to
//!    a fresh rebuild (base fixpoint + the same batches re-applied to
//!    an un-shared view) — sharing must never change what maintenance
//!    computes.
//! 2. **Old snapshots never move.** A clone taken before each batch is
//!    held alive across the *whole* sequence and re-examined at the
//!    end: its rendered syntactic form and its full instance set must
//!    be byte-identical to what they were at capture time, even though
//!    the writer has since tombstoned, replaced and appended entries in
//!    (what used to be) shared pages.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Value, Var};
use mmv_core::view::{canonicalize, GroundFact};
use mmv_core::{
    apply_batch, fixpoint, BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, FixpointConfig,
    MaterializedView, Operator, SupportMode, UpdateBatch,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn x() -> Term {
    Term::var(Var(0))
}

/// Interval fact `pred(X) <- 20*slot <= X <= 20*slot + width` with
/// `width < 20`: facts of one predicate never overlap (unique
/// derivations, so batch order is the only degree of freedom).
fn disjoint_fact(pred: &str, slot: i64, width: i64) -> Clause {
    let lo = 20 * slot;
    Clause::fact(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(lo + width),
        )),
    )
}

const FACT_PREDS: [&str; 2] = ["b0", "b1"];

/// A stratified chain program over disjoint facts (the same shape the
/// `batch_equivalence` suite uses): every instance has a unique
/// derivation, so the rebuild comparison can be syntactic.
fn chain_db(widths0: &[i64], widths1: &[i64], wiring: &[usize]) -> ConstrainedDatabase {
    let mut clauses: Vec<Clause> = Vec::new();
    for (slot, w) in widths0.iter().enumerate() {
        clauses.push(disjoint_fact("b0", slot as i64, *w));
    }
    for (slot, w) in widths1.iter().enumerate() {
        clauses.push(disjoint_fact("b1", slot as i64, *w));
    }
    let mut below: Vec<String> = FACT_PREDS.iter().map(|p| p.to_string()).collect();
    let mut wiring = wiring.iter().copied().cycle();
    for layer in 0..2 {
        let mut current: Vec<String> = Vec::new();
        for j in 0..2 {
            let head = format!("q{layer}_{j}");
            let src = &below[wiring.next().expect("cycled") % below.len()];
            clauses.push(Clause::new(
                &head,
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new(src, vec![x()])],
            ));
            current.push(head);
        }
        below = current;
    }
    ConstrainedDatabase::from_clauses(clauses)
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

/// Insertion interval in fresh value space, disjoint from every fact.
fn fresh_interval(pred: &str, lo: i64, w: i64) -> ConstrainedAtom {
    let lo = 1000 + lo;
    ConstrainedAtom::new(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(lo + w),
        )),
    )
}

#[derive(Debug, Clone)]
struct Workload {
    db: ConstrainedDatabase,
    batches: Vec<UpdateBatch>,
}

fn workload() -> impl Strategy<Value = Workload> {
    let batch = (
        collection::vec((0usize..2, 0i64..60), 0..=3),
        collection::vec((0usize..2, 0i64..40, 0i64..6), 0..=2),
    )
        .prop_map(|(dels, inss)| UpdateBatch {
            deletes: dels
                .into_iter()
                .map(|(p, v)| point(FACT_PREDS[p], v))
                .collect(),
            inserts: inss
                .into_iter()
                .map(|(p, lo, w)| fresh_interval(FACT_PREDS[p], lo, w))
                .collect(),
        });
    (
        collection::vec(0i64..15, 1..=3),
        collection::vec(0i64..15, 1..=3),
        collection::vec(0usize..4, 4..=4),
        collection::vec(batch, 1..=4),
    )
        .prop_map(|(widths0, widths1, wiring, batches)| Workload {
            db: chain_db(&widths0, &widths1, &wiring),
            batches,
        })
}

/// The full observable syntactic state of a view: canonicalized live
/// atoms with their supports, sorted.
fn render(v: &MaterializedView) -> Vec<String> {
    let mut out: Vec<String> = v
        .live_entries()
        .map(|(_, e)| {
            format!(
                "{} @ {:?}",
                canonicalize(&e.atom),
                e.support.as_ref().map(|s| s.to_string())
            )
        })
        .collect();
    out.sort();
    out
}

/// The view as seen through constant-discriminated probes: for each
/// predicate in the workload and a spread of probe values covering the
/// delete and insert ranges, the canonicalized atoms the `by_const`
/// index surfaces (plus whether the probe was discriminated at all).
/// This is the sub-page-CoW-sensitive read path — a corrupted shared
/// trie leaf shows up here before anywhere else.
fn probe_render(v: &MaterializedView) -> Vec<String> {
    let mut out = Vec::new();
    for pred in ["b0", "b1", "q0_0", "q0_1", "q1_0", "q1_1"] {
        for val in [0i64, 7, 20, 41, 55, 1000, 1003] {
            let value = Value::int(val);
            let probe = v.probe(pred, &[Some(&value)]);
            let mut hits: Vec<String> = probe
                .iter()
                .map(|id| canonicalize(&v.entry(id).atom).to_string())
                .collect();
            hits.sort();
            out.push(format!(
                "{pred}({val}) disc={} -> [{}]",
                probe.discriminated(),
                hits.join(", ")
            ));
        }
    }
    out
}

fn instances(v: &MaterializedView) -> BTreeSet<GroundFact> {
    v.instances(&NoDomains, &SolverConfig::default())
        .expect("bounded workload instances")
}

fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// CoW-maintained view ≡ fresh rebuild, with every pre-batch
    /// snapshot held alive throughout and re-verified at the end.
    #[test]
    fn cow_maintenance_matches_rebuild_and_snapshots_never_move(w in workload()) {
        let cfg = FixpointConfig::default();
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let (base, _) = fixpoint(&w.db, &NoDomains, Operator::Tp, mode, &cfg)
                .expect("base fixpoint");
            let mut maintained = base.clone();
            // Capture a snapshot before every batch (epochs 0..n-1) and
            // keep them all alive while the writer keeps mutating.
            let mut held: Vec<(MaterializedView, Vec<String>, BTreeSet<GroundFact>)> = Vec::new();
            for batch in &w.batches {
                held.push((maintained.clone(), render(&maintained), instances(&maintained)));
                apply_batch(&w.db, &mut maintained, batch, &NoDomains, Operator::Tp, &cfg)
                    .expect("batch applies");
            }

            // 1. The shared-store view computes the same result as an
            //    un-shared rebuild of the whole sequence.
            let (mut rebuilt, _) = fixpoint(&w.db, &NoDomains, Operator::Tp, mode, &cfg)
                .expect("rebuild fixpoint");
            for batch in &w.batches {
                apply_batch(&w.db, &mut rebuilt, batch, &NoDomains, Operator::Tp, &cfg)
                    .expect("rebuild batch applies");
            }
            prop_assert!(
                maintained.syntactically_equal(&rebuilt),
                "{mode:?} maintained view diverged from rebuild on\n{}\nmaintained:\n{maintained}\nrebuilt:\n{rebuilt}",
                w.db
            );

            // 2. No held snapshot was corrupted by later maintenance:
            //    re-render and re-query each one.
            for (i, (snap, rendered, insts)) in held.iter().enumerate() {
                prop_assert_eq!(
                    &render(snap),
                    rendered,
                    "{:?} snapshot {} changed syntactically under later batches on\n{}",
                    mode,
                    i,
                    w.db
                );
                prop_assert_eq!(
                    &instances(snap),
                    insts,
                    "{:?} snapshot {} changed instances under later batches on\n{}",
                    mode,
                    i,
                    w.db
                );
            }
        }
    }

    /// The sub-page `by_const` CoW discipline, pinned from the outside:
    /// snapshots taken before each batch keep returning byte-identical
    /// results through the constant-probe read path while the writer
    /// keeps un-sharing trie leaves underneath them, and each batch's
    /// key-level copy bill never exceeds the whole-page bill the old
    /// O(index) copy would have paid (every `by_const` key, every live
    /// slot, of the indexes as they stood at snapshot time).
    #[test]
    fn sub_page_by_const_cow_isolates_snapshots_and_bounds_key_copies(w in workload()) {
        let cfg = FixpointConfig::default();
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let (base, _) = fixpoint(&w.db, &NoDomains, Operator::Tp, mode, &cfg)
                .expect("base fixpoint");
            let mut maintained = base.clone();
            let mut held: Vec<(MaterializedView, Vec<String>)> = Vec::new();
            for batch in &w.batches {
                let snap = maintained.clone();
                let probes = probe_render(&snap);
                let before = maintained.share_stats();
                apply_batch(&w.db, &mut maintained, batch, &NoDomains, Operator::Tp, &cfg)
                    .expect("batch applies");
                let after = maintained.share_stats();
                let (bc_copied, slot_copied) = after.key_copies_since(&before);
                // Un-sharing only ever clones pairs that existed in a
                // shared leaf at snapshot time, so the key-level bill is
                // bounded by the whole-index key count at the snapshot.
                prop_assert!(
                    bc_copied <= before.by_const_keys as u64,
                    "{:?}: batch copied {} by_const keys, more than the {} \
                     whole-page copying would have paid, on\n{}",
                    mode,
                    bc_copied,
                    before.by_const_keys,
                    w.db
                );
                prop_assert!(
                    slot_copied <= snap.len() as u64,
                    "{:?}: batch copied {} slot pairs against {} live entries on\n{}",
                    mode,
                    slot_copied,
                    snap.len(),
                    w.db
                );
                held.push((snap, probes));
            }
            for (i, (snap, probes)) in held.iter().enumerate() {
                prop_assert_eq!(
                    &probe_render(snap),
                    probes,
                    "{:?} snapshot {} changed under constant probes after later batches on\n{}",
                    mode,
                    i,
                    w.db
                );
            }
        }
    }
}
