//! Parser for the paper's mediator rule language.
//!
//! Grammar (HERMES-style, §2.1):
//!
//! ```text
//! program    := clause*
//! clause     := atom [ "<-" constraint ] [ "||" body ] "."
//! body       := atom ("," atom)*
//! atom       := IDENT "(" [ term ("," term)* ] ")"
//! constraint := lit ("&" lit)*
//! lit        := "in" "(" term "," call ")"
//!             | "notin" "(" term "," call ")"
//!             | "not" "(" constraint ")"
//!             | term relop term
//! relop      := "=" | "!=" | "<=" | ">=" | "<" | ">"
//! call       := IDENT ":" IDENT "(" [ term ("," term)* ] ")"
//! term       := primary ( "." IDENT )*           (record field access)
//! primary    := VAR | INT | STRING | IDENT
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables
//! (Prolog convention); lowercase identifiers are string constants.
//! `%` starts a line comment.

use crate::atom::ConstrainedAtom;
use crate::batch::UpdateBatch;
use crate::program::{BodyAtom, Clause, ClauseId, ConstrainedDatabase};
use crate::support::{Producer, Support};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Call, CmpOp, Constraint, Lit, Term, Value, Var};
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with 1-based line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Variable(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Arrow,    // <-
    Parallel, // ||
    Amp,      // &
    Colon,    // :
    Eq,       // =
    Neq,      // !=
    Le,       // <=
    Ge,       // >=
    Lt,       // <
    Gt,       // >
    End,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Variable(s) => write!(f, "variable {s:?}"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::LParen => write!(f, "'('"),
            Tok::RParen => write!(f, "')'"),
            Tok::Comma => write!(f, "','"),
            Tok::Dot => write!(f, "'.'"),
            Tok::Arrow => write!(f, "'<-'"),
            Tok::Parallel => write!(f, "'||'"),
            Tok::Amp => write!(f, "'&'"),
            Tok::Colon => write!(f, "':'"),
            Tok::Eq => write!(f, "'='"),
            Tok::Neq => write!(f, "'!='"),
            Tok::Le => write!(f, "'<='"),
            Tok::Ge => write!(f, "'>='"),
            Tok::Lt => write!(f, "'<'"),
            Tok::Gt => write!(f, "'>'"),
            Tok::End => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// A saved parser position, for bounded backtracking at the `'.'`
/// ambiguity (field access vs. clause terminator).
#[derive(Clone)]
struct Checkpoint {
    pos: usize,
    line: usize,
    col: usize,
    tok: Tok,
    tok_line: usize,
    tok_col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::End, line, col));
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'&' => {
                self.bump();
                Tok::Amp
            }
            b':' => {
                self.bump();
                Tok::Colon
            }
            b'=' => {
                self.bump();
                Tok::Eq
            }
            b'|' => {
                self.bump();
                if self.peek_byte() == Some(b'|') {
                    self.bump();
                    Tok::Parallel
                } else {
                    return Err(self.error("expected '||'"));
                }
            }
            b'!' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Neq
                } else {
                    return Err(self.error("expected '!='"));
                }
            }
            b'<' => {
                self.bump();
                match self.peek_byte() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Le
                    }
                    Some(b'-') => {
                        self.bump();
                        Tok::Arrow
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek_byte() == Some(b'=') {
                    self.bump();
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                self.bump();
                let mut bytes = Vec::new();
                loop {
                    match self.bump() {
                        Some(c) if c == quote => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => bytes.push(b'\n'),
                            Some(b't') => bytes.push(b'\t'),
                            Some(b'r') => bytes.push(b'\r'),
                            Some(c) => bytes.push(c),
                            None => return Err(self.error("unterminated string")),
                        },
                        Some(c) => bytes.push(c),
                        None => return Err(self.error("unterminated string")),
                    }
                }
                match String::from_utf8(bytes) {
                    Ok(s) => Tok::Str(s),
                    Err(_) => return Err(self.error("invalid UTF-8 in string")),
                }
            }
            b'-' | b'0'..=b'9' => {
                let mut s = String::new();
                if b == b'-' {
                    s.push('-');
                    self.bump();
                }
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_digit() {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s == "-" {
                    return Err(self.error("expected digits after '-'"));
                }
                match s.parse::<i64>() {
                    Ok(i) => Tok::Int(i),
                    Err(_) => return Err(self.error(format!("integer out of range: {s}"))),
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek_byte() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                let first = s.as_bytes()[0];
                if first.is_ascii_uppercase() || first == b'_' {
                    Tok::Variable(s)
                } else {
                    Tok::Ident(s)
                }
            }
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        Ok((tok, line, col))
    }
}

/// A parsed program together with the source names of its variables.
#[derive(Debug)]
pub struct Parsed {
    /// The constrained database.
    pub db: ConstrainedDatabase,
    /// Source name of each variable id.
    pub var_names: FxHashMap<Var, String>,
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
    /// Clause-local variable scope.
    scope: FxHashMap<String, Var>,
    var_names: FxHashMap<Var, String>,
    next_var: u32,
    /// Literal-variable mode: `X<n>` maps to `Var(n)` exactly (any
    /// other variable spelling is an error). Used by the round-trip
    /// codecs ([`parse_atom_exact`], [`parse_entry`]), where variable
    /// identity must survive `Display` → parse unchanged.
    literal_vars: bool,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next_token()?;
        Ok(Parser {
            lexer,
            tok,
            line,
            col,
            scope: FxHashMap::default(),
            var_names: FxHashMap::default(),
            next_var: 0,
            literal_vars: false,
        })
    }

    fn new_literal(src: &'a str) -> Result<Self, ParseError> {
        let mut p = Parser::new(src)?;
        p.literal_vars = true;
        Ok(p)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn advance(&mut self) -> Result<(), ParseError> {
        let (tok, line, col) = self.lexer.next_token()?;
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    fn expect(&mut self, expected: &Tok) -> Result<(), ParseError> {
        if &self.tok == expected {
            self.advance()
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.tok)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match std::mem::replace(&mut self.tok, Tok::End) {
            Tok::Ident(s) => {
                self.advance()?;
                Ok(s)
            }
            other => {
                self.tok = other;
                Err(self.error(format!("expected identifier, found {}", self.tok)))
            }
        }
    }

    fn var(&mut self, name: String) -> Result<Var, ParseError> {
        if self.literal_vars {
            let id = name
                .strip_prefix('X')
                .filter(|d| !d.is_empty())
                .and_then(|d| d.parse::<u32>().ok());
            return match id {
                Some(n) => Ok(Var(n)),
                None => Err(self.error(format!(
                    "non-canonical variable {name:?} (exact mode accepts only X<n>)"
                ))),
            };
        }
        if let Some(&v) = self.scope.get(&name) {
            return Ok(v);
        }
        let v = Var(self.next_var);
        self.next_var += 1;
        self.scope.insert(name.clone(), v);
        self.var_names.insert(v, name);
        Ok(v)
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let mut base = match std::mem::replace(&mut self.tok, Tok::End) {
            Tok::Variable(name) => {
                self.advance()?;
                Term::Var(self.var(name)?)
            }
            Tok::Int(i) => {
                self.advance()?;
                Term::Const(Value::Int(i))
            }
            Tok::Str(s) => {
                self.advance()?;
                Term::Const(Value::str(&s))
            }
            Tok::Ident(s) => {
                self.advance()?;
                match s.as_str() {
                    "true" => Term::Const(Value::Bool(true)),
                    "false" => Term::Const(Value::Bool(false)),
                    _ => Term::Const(Value::str(&s)),
                }
            }
            other => {
                self.tok = other;
                return Err(self.error(format!("expected a term, found {}", self.tok)));
            }
        };
        // Field access chains (X.origin.name …) vs. the clause
        // terminator: `X >= 5. q(X).` must NOT read `5.q` as a field.
        // A dot starts a field access only if an identifier follows that
        // is itself not the head of a new clause (i.e. not followed by
        // '('); otherwise restore and let the caller see the dot.
        while self.tok == Tok::Dot {
            let cp = self.checkpoint();
            self.advance()?;
            match std::mem::replace(&mut self.tok, Tok::End) {
                Tok::Ident(f) => {
                    self.advance()?;
                    if self.tok == Tok::LParen {
                        self.restore(cp);
                        break;
                    }
                    base = Term::field(base, &f);
                }
                other => {
                    self.tok = other;
                    self.restore(cp);
                    break;
                }
            }
        }
        Ok(base)
    }

    fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            pos: self.lexer.pos,
            line: self.lexer.line,
            col: self.lexer.col,
            tok: self.tok.clone(),
            tok_line: self.line,
            tok_col: self.col,
        }
    }

    fn restore(&mut self, cp: Checkpoint) {
        self.lexer.pos = cp.pos;
        self.lexer.line = cp.line;
        self.lexer.col = cp.col;
        self.tok = cp.tok;
        self.line = cp.tok_line;
        self.col = cp.tok_col;
    }

    fn call(&mut self) -> Result<Call, ParseError> {
        let domain = self.ident()?;
        self.expect(&Tok::Colon)?;
        let func = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                args.push(self.checked_term()?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Call::new(&domain, &func, args))
    }

    /// A term in argument/relation position.
    fn checked_term(&mut self) -> Result<Term, ParseError> {
        self.term()
    }

    fn lit(&mut self) -> Result<Lit, ParseError> {
        // in(...) / notin(...) / not(...)
        if let Tok::Ident(name) = &self.tok {
            match name.as_str() {
                "in" | "notin" => {
                    let positive = name == "in";
                    self.advance()?;
                    self.expect(&Tok::LParen)?;
                    let x = self.checked_term()?;
                    self.expect(&Tok::Comma)?;
                    let call = self.call()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(if positive {
                        Lit::In(x, call)
                    } else {
                        Lit::NotIn(x, call)
                    });
                }
                "not" => {
                    self.advance()?;
                    self.expect(&Tok::LParen)?;
                    let inner = self.constraint()?;
                    self.expect(&Tok::RParen)?;
                    return Ok(Lit::Not(inner));
                }
                _ => {}
            }
        }
        let lhs = self.checked_term()?;
        let op = match self.tok {
            Tok::Eq => None,
            Tok::Neq => Some(None),
            Tok::Le => Some(Some(CmpOp::Le)),
            Tok::Ge => Some(Some(CmpOp::Ge)),
            Tok::Lt => Some(Some(CmpOp::Lt)),
            Tok::Gt => Some(Some(CmpOp::Gt)),
            _ => return Err(self.error(format!("expected a relation, found {}", self.tok))),
        };
        self.advance()?;
        let rhs = self.checked_term()?;
        Ok(match op {
            None => Lit::Eq(lhs, rhs),
            Some(None) => Lit::Neq(lhs, rhs),
            Some(Some(cmp)) => Lit::Cmp(lhs, cmp, rhs),
        })
    }

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        let mut lits = vec![self.lit()?];
        while self.tok == Tok::Amp {
            self.advance()?;
            lits.push(self.lit()?);
        }
        Ok(Constraint { lits })
    }

    fn atom(&mut self) -> Result<(String, Vec<Term>), ParseError> {
        let pred = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                args.push(self.checked_term()?);
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok((pred, args))
    }

    fn clause(&mut self) -> Result<Clause, ParseError> {
        self.scope.clear();
        let (pred, args) = self.atom()?;
        let mut constraint = Constraint::truth();
        let mut body = Vec::new();
        if self.tok == Tok::Arrow {
            self.advance()?;
            if self.tok != Tok::Parallel {
                constraint = self.constraint()?;
            }
        }
        if self.tok == Tok::Parallel {
            self.advance()?;
            loop {
                let (bp, ba) = self.atom()?;
                body.push(BodyAtom::new(&bp, ba));
                if self.tok == Tok::Comma {
                    self.advance()?;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Clause::new(&pred, args, constraint, body))
    }

    fn program(&mut self) -> Result<ConstrainedDatabase, ParseError> {
        let mut db = ConstrainedDatabase::new();
        while self.tok != Tok::End {
            db.push(self.clause()?);
        }
        Ok(db)
    }

    /// Consumes a specific lowercase keyword (lexed as an identifier).
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if matches!(&self.tok, Tok::Ident(s) if s == kw) {
            self.advance()
        } else {
            Err(self.error(format!("expected {kw:?}, found {}", self.tok)))
        }
    }

    fn nonneg_int(&mut self) -> Result<u64, ParseError> {
        match self.tok {
            Tok::Int(i) if i >= 0 => {
                self.advance()?;
                Ok(i as u64)
            }
            _ => Err(self.error(format!(
                "expected a nonnegative integer, found {}",
                self.tok
            ))),
        }
    }

    /// Parses a support in the entry-codec grammar:
    /// `c(<clause>) | e(<ticket>) | n(<leaf>, <support>*)`.
    fn support(&mut self) -> Result<Support, ParseError> {
        let kw = self.ident()?;
        match kw.as_str() {
            "c" | "e" => {
                self.expect(&Tok::LParen)?;
                let n = self.nonneg_int()?;
                self.expect(&Tok::RParen)?;
                Ok(Support::leaf(if kw == "c" {
                    Producer::Clause(ClauseId(n as usize))
                } else {
                    Producer::External(n)
                }))
            }
            "n" => {
                self.expect(&Tok::LParen)?;
                let producer = self.support()?;
                if !producer.children().is_empty() {
                    return Err(self.error("support producer must be a leaf (c/e)"));
                }
                let mut children = Vec::new();
                while self.tok == Tok::Comma {
                    self.advance()?;
                    children.push(self.support()?);
                }
                self.expect(&Tok::RParen)?;
                Ok(Support::node(producer.producer(), children))
            }
            other => Err(self.error(format!("expected a support (c/e/n), found {other:?}"))),
        }
    }

    /// The `pred(args) [<- constraint]` prefix shared by the atom
    /// entry points, with no terminator handling.
    fn constrained_atom(&mut self) -> Result<ConstrainedAtom, ParseError> {
        let (pred, args) = self.atom()?;
        let mut constraint = Constraint::truth();
        if self.tok == Tok::Arrow {
            self.advance()?;
            constraint = self.constraint()?;
        }
        Ok(ConstrainedAtom::new(&pred, args, constraint))
    }
}

/// Parses a mediator program.
pub fn parse_program(src: &str) -> Result<Parsed, ParseError> {
    let mut p = Parser::new(src)?;
    let db = p.program()?;
    Ok(Parsed {
        db,
        var_names: p.var_names,
    })
}

/// Parses a single constrained atom `pred(args) [<- constraint]` (no
/// trailing dot required), as used for update requests.
pub fn parse_atom(src: &str) -> Result<ConstrainedAtom, ParseError> {
    let mut p = Parser::new(src)?;
    let atom = p.constrained_atom()?;
    if p.tok == Tok::Dot {
        p.advance()?;
    }
    if p.tok != Tok::End {
        return Err(p.error(format!("trailing input: {}", p.tok)));
    }
    Ok(atom)
}

/// Parses a single constrained atom with *literal* variables: `X<n>`
/// maps to `Var(n)` exactly, so `parse_atom_exact(&atom.to_string())`
/// reproduces `atom` including its variable identities. This is the
/// codec the durable WAL uses — renaming-fresh parsing
/// ([`parse_atom`]) would break variable sharing between an entry's
/// atom and its `children_args`.
///
/// Codec limits (documented, not checked here): string constants must
/// be valid UTF-8 and free of control characters other than `\n`,
/// `\t`, `\r`; tuple/record constant values have no textual form.
pub fn parse_atom_exact(src: &str) -> Result<ConstrainedAtom, ParseError> {
    let mut p = Parser::new_literal(src)?;
    let atom = p.constrained_atom()?;
    if p.tok != Tok::End {
        return Err(p.error(format!("trailing input: {}", p.tok)));
    }
    Ok(atom)
}

/// One durable-log payload, as framed by `mmv-service`'s WAL: the
/// textual body of a WAL frame. Rendered by [`render_wal_payload`],
/// parsed back by [`parse_wal_payload`]; the round trip is exact
/// (variables are literal, see [`parse_atom_exact`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalPayload {
    /// An applied batch: the global epoch it published, the base of its
    /// reserved external-insertion ticket range (`tickets=` in the
    /// textual form), and the batch itself. Recovery replays these
    /// through the ticketed batch path so `External(t)` supports come
    /// back bit-identical.
    Batch {
        /// The global epoch the batch published.
        epoch: u64,
        /// First external-insertion ticket of the batch's reserved
        /// range (one ticket per insertion request, in order).
        ticket_base: u64,
        /// The update transaction.
        batch: UpdateBatch,
    },
    /// A writer-lane recovery (see `mmv-service`'s `Recovery`).
    Recovery {
        /// The recovered lane.
        shard: usize,
        /// The shard epoch the lane was rebuilt to.
        epoch: u64,
    },
    /// A checkpoint-completion marker: a checkpoint covering every
    /// epoch `<= epoch` was durably written.
    Checkpoint {
        /// The last epoch the checkpoint covers.
        epoch: u64,
    },
    /// A storage-health marker: the service's background probe wrote
    /// (and fsynced) this frame to prove the log accepts appends again,
    /// journaling the read-only → healthy transition.
    Health {
        /// The global epoch at which storage was confirmed healthy.
        epoch: u64,
    },
}

/// Renders a [`WalPayload`] in the textual WAL format: a `key=value`
/// header line (`batch epoch=<e> tickets=<t>` / `recovery shard=<s>
/// epoch=<e>` / `checkpoint epoch=<e>`), then for batches one
/// `- <atom>` line per deletion and one `+ <atom>` line per insertion.
pub fn render_wal_payload(payload: &WalPayload) -> String {
    match payload {
        WalPayload::Batch {
            epoch,
            ticket_base,
            batch,
        } => render_wal_batch(*epoch, *ticket_base, batch),
        WalPayload::Recovery { shard, epoch } => format!("recovery shard={shard} epoch={epoch}\n"),
        WalPayload::Checkpoint { epoch } => format!("checkpoint epoch={epoch}\n"),
        WalPayload::Health { epoch } => format!("health epoch={epoch}\n"),
    }
}

/// Renders a batch frame directly from a borrowed [`UpdateBatch`] —
/// the write path's variant of [`render_wal_payload`], avoiding the
/// deep clone that building a [`WalPayload::Batch`] would take.
pub fn render_wal_batch(epoch: u64, ticket_base: u64, batch: &UpdateBatch) -> String {
    let mut s = String::new();
    writeln!(s, "batch epoch={epoch} tickets={ticket_base}").unwrap();
    for d in &batch.deletes {
        writeln!(s, "- {d}").unwrap();
    }
    for i in &batch.inserts {
        writeln!(s, "+ {i}").unwrap();
    }
    s
}

/// Parses a `key=value` field from a WAL header line.
fn wal_field(
    fields: &mut std::str::SplitWhitespace<'_>,
    key: &str,
    line: usize,
) -> Result<u64, ParseError> {
    let err = |message: String| ParseError {
        message,
        line,
        col: 1,
    };
    let field = fields
        .next()
        .ok_or_else(|| err(format!("missing {key}= field")))?;
    let value = field
        .strip_prefix(key)
        .and_then(|v| v.strip_prefix('='))
        .ok_or_else(|| err(format!("expected {key}=<n>, found {field:?}")))?;
    value
        .parse::<u64>()
        .map_err(|_| err(format!("bad {key}= value {value:?}")))
}

/// Parses the textual body of one WAL frame back into a
/// [`WalPayload`]. Inverse of [`render_wal_payload`].
pub fn parse_wal_payload(src: &str) -> Result<WalPayload, ParseError> {
    let mut lines = src.lines().enumerate();
    let (header_idx, header) =
        lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or(ParseError {
                message: "empty WAL payload".into(),
                line: 1,
                col: 1,
            })?;
    let header_line = header_idx + 1;
    let err = |message: String, line: usize| ParseError {
        message,
        line,
        col: 1,
    };
    let mut fields = header.split_whitespace();
    let kind = fields.next().expect("non-empty line has a first field");
    // Re-number errors from single-line atom parses to the payload's
    // own line numbering.
    let at_line = |mut e: ParseError, line: usize| {
        e.line = line;
        e
    };
    let payload = match kind {
        "batch" => {
            let epoch = wal_field(&mut fields, "epoch", header_line)?;
            let ticket_base = wal_field(&mut fields, "tickets", header_line)?;
            let mut batch = UpdateBatch::new();
            for (idx, line) in lines.by_ref() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Some(atom) = line.strip_prefix("- ") {
                    batch
                        .deletes
                        .push(parse_atom_exact(atom).map_err(|e| at_line(e, idx + 1))?);
                } else if let Some(atom) = line.strip_prefix("+ ") {
                    // Insertion order is ticket order; deletions always
                    // render before insertions, so order is preserved.
                    batch
                        .inserts
                        .push(parse_atom_exact(atom).map_err(|e| at_line(e, idx + 1))?);
                } else {
                    return Err(err(
                        format!("expected '- <atom>' or '+ <atom>', found {line:?}"),
                        idx + 1,
                    ));
                }
            }
            WalPayload::Batch {
                epoch,
                ticket_base,
                batch,
            }
        }
        "recovery" => {
            let shard = wal_field(&mut fields, "shard", header_line)? as usize;
            let epoch = wal_field(&mut fields, "epoch", header_line)?;
            WalPayload::Recovery { shard, epoch }
        }
        "checkpoint" => {
            let epoch = wal_field(&mut fields, "epoch", header_line)?;
            WalPayload::Checkpoint { epoch }
        }
        "health" => {
            let epoch = wal_field(&mut fields, "epoch", header_line)?;
            WalPayload::Health { epoch }
        }
        other => {
            return Err(err(
                format!("unknown WAL record kind {other:?}"),
                header_line,
            ))
        }
    };
    if let Some(extra) = fields.next() {
        return Err(err(format!("trailing header field {extra:?}"), header_line));
    }
    if let Some((idx, extra)) = lines.find(|(_, l)| !l.trim().is_empty()) {
        return Err(err(format!("trailing input: {extra:?}"), idx + 1));
    }
    Ok(payload)
}

/// One materialized-view entry as serialized into a checkpoint:
/// the constrained atom, its support (in `WithSupports` views), and
/// the per-child argument vectors StDel uses for replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEntry {
    /// The entry's constrained atom.
    pub atom: ConstrainedAtom,
    /// The entry's support, if the view tracks supports.
    pub support: Option<Support>,
    /// The body-atom argument vectors recorded at derivation time,
    /// sharing variables with `atom` (hence the literal-variable
    /// codec).
    pub children_args: Vec<Vec<Term>>,
}

fn render_support_into(s: &Support, out: &mut String) {
    fn leaf(p: Producer, out: &mut String) {
        match p {
            Producer::Clause(c) => write!(out, "c({})", c.0).unwrap(),
            Producer::External(t) => write!(out, "e({t})").unwrap(),
        }
    }
    if s.children().is_empty() {
        leaf(s.producer(), out);
    } else {
        out.push_str("n(");
        leaf(s.producer(), out);
        for c in s.children() {
            out.push_str(", ");
            render_support_into(c, out);
        }
        out.push(')');
    }
}

/// Renders one view entry as a single checkpoint line:
/// `<atom> spt <support|none> args (<terms>)*` — supports in the
/// grammar `c(<clause>) | e(<ticket>) | n(<leaf>, <support>*)`,
/// one parenthesized term group per body atom. Inverse of
/// [`parse_entry`]; variables are literal (`X<n>` ⇔ `Var(n)`).
pub fn render_entry(
    atom: &ConstrainedAtom,
    support: Option<&Support>,
    children_args: &[Vec<Term>],
) -> String {
    let mut s = String::new();
    write!(s, "{atom} spt ").unwrap();
    match support {
        None => s.push_str("none"),
        Some(sp) => render_support_into(sp, &mut s),
    }
    s.push_str(" args");
    for group in children_args {
        s.push_str(" (");
        for (i, t) in group.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "{t}").unwrap();
        }
        s.push(')');
    }
    s
}

/// Parses one checkpoint entry line. Inverse of [`render_entry`].
pub fn parse_entry(src: &str) -> Result<ParsedEntry, ParseError> {
    let mut p = Parser::new_literal(src)?;
    let atom = p.constrained_atom()?;
    p.keyword("spt")?;
    let support = if matches!(&p.tok, Tok::Ident(s) if s == "none") {
        p.advance()?;
        None
    } else {
        Some(p.support()?)
    };
    p.keyword("args")?;
    let mut children_args = Vec::new();
    while p.tok == Tok::LParen {
        p.advance()?;
        let mut group = Vec::new();
        if p.tok != Tok::RParen {
            loop {
                group.push(p.checked_term()?);
                if p.tok == Tok::Comma {
                    p.advance()?;
                } else {
                    break;
                }
            }
        }
        p.expect(&Tok::RParen)?;
        children_args.push(group);
    }
    if p.tok != Tok::End {
        return Err(p.error(format!("trailing input: {}", p.tok)));
    }
    Ok(ParsedEntry {
        atom,
        support,
        children_args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ground_facts() {
        let parsed = parse_program(r#"edge(a, b). edge("b", 3)."#).unwrap();
        assert_eq!(parsed.db.len(), 2);
        let c0 = parsed.db.clause(crate::program::ClauseId(0));
        assert_eq!(c0.head_pred.as_ref(), "edge");
        assert_eq!(c0.head_args[0], Term::Const(Value::str("a")));
        let c1 = parsed.db.clause(crate::program::ClauseId(1));
        assert_eq!(c1.head_args[1], Term::int(3));
    }

    #[test]
    fn parses_constrained_fact() {
        let parsed = parse_program("b(X) <- X >= 5.").unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert_eq!(c.constraint.to_string(), "X0 >= 5");
        assert_eq!(parsed.var_names[&Var(0)], "X");
    }

    #[test]
    fn parses_rule_with_body_and_constraint() {
        let parsed = parse_program(
            "swlndc(X, Y) <- in(A, paradox:select_eq(phonebook, name, X)) & \
             A.city = dc || seenwith(X, Y).",
        )
        .unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert_eq!(c.body.len(), 1);
        assert_eq!(c.body[0].pred.as_ref(), "seenwith");
        assert_eq!(c.constraint.lits.len(), 2);
        assert!(matches!(&c.constraint.lits[0], Lit::In(_, call)
            if call.domain.as_ref() == "paradox" && call.func.as_ref() == "select_eq"));
        assert!(
            matches!(&c.constraint.lits[1], Lit::Eq(Term::Field(_, f), _)
            if f.as_ref() == "city")
        );
    }

    #[test]
    fn parses_rule_with_body_only() {
        let parsed = parse_program("c(X) <- || a(X).").unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert!(c.constraint.is_truth());
        assert_eq!(c.body.len(), 1);
    }

    #[test]
    fn variables_scoped_per_clause() {
        let parsed = parse_program("p(X) <- X >= 1. q(X) <- X >= 2.").unwrap();
        let c0 = parsed.db.clause(crate::program::ClauseId(0));
        let c1 = parsed.db.clause(crate::program::ClauseId(1));
        assert_ne!(c0.head_args, c1.head_args, "each clause gets fresh vars");
    }

    #[test]
    fn parses_not_and_notin() {
        let parsed =
            parse_program("p(X) <- not(X = 2 & X <= 5) & notin(X, arith:leq(0)).").unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert!(matches!(&c.constraint.lits[0], Lit::Not(inner) if inner.lits.len() == 2));
        assert!(matches!(&c.constraint.lits[1], Lit::NotIn(_, _)));
    }

    #[test]
    fn parses_field_chains_and_comparisons() {
        let parsed = parse_program("p(P1, P2) <- P1.origin = P2.origin & P1 != P2.").unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert_eq!(c.constraint.lits.len(), 2);
    }

    #[test]
    fn comments_ignored() {
        let parsed = parse_program("% the mediator\np(a). % fact\n").unwrap();
        assert_eq!(parsed.db.len(), 1);
    }

    #[test]
    fn parse_atom_for_updates() {
        let a = parse_atom("seenwith(don, john)").unwrap();
        assert_eq!(a.pred.as_ref(), "seenwith");
        assert!(a.constraint.is_truth());
        let b = parse_atom("b(X) <- X = 6").unwrap();
        assert_eq!(b.constraint.to_string(), "X0 = 6");
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_program("p(X) <- X >= .").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            err.message.contains("term") || err.message.contains("'.'"),
            "{err}"
        );
        let err2 = parse_program("p(X)").unwrap_err();
        assert!(err2.message.contains("'.'"), "{err2}");
    }

    #[test]
    fn negative_integers() {
        let parsed = parse_program("p(X) <- X >= -5.").unwrap();
        let c = parsed.db.clause(crate::program::ClauseId(0));
        assert!(matches!(&c.constraint.lits[0], Lit::Cmp(_, CmpOp::Ge, t) if *t == Term::int(-5)));
    }

    #[test]
    fn law_enforcement_mediator_parses() {
        // The paper's three clauses (1)–(3), in this crate's syntax.
        let src = r#"
            % clause (1)
            seenwith(X, Y) <-
                in(P1, facextract:segmentface(surveillancedata)) &
                in(P2, facextract:segmentface(surveillancedata)) &
                P1.origin = P2.origin & P1 != P2 &
                in(P3, facedb:findface(X)) &
                in(true, facextract:matchface(P1, P3)) &
                in(Y, facedb:findname(P2)).
            % clause (2)
            swlndc(X, Y) <-
                in(A, paradox:select_eq(phonebook, name, Y)) &
                in(Pt1, spatialdb:locate_address(A.streetnum, A.streetname, A.cityname)) &
                in(true, spatialdb:range(dcareamap, dc, Pt1.x, Pt1.y, 100))
                || seenwith(X, Y).
            % clause (3)
            suspect(X, Y) <-
                in(T, dbase:select_eq(empl_abc, name, Y))
                || swlndc(X, Y).
        "#;
        let parsed = parse_program(src).unwrap();
        assert_eq!(parsed.db.len(), 3);
        assert_eq!(parsed.db.clauses_for_head("suspect").len(), 1);
        let c1 = parsed.db.clause(crate::program::ClauseId(0));
        assert_eq!(c1.constraint.lits.len(), 7);
    }

    #[test]
    fn exact_atoms_round_trip_variable_identity() {
        let a = ConstrainedAtom::new(
            "p",
            vec![Term::var(Var(7)), Term::var(Var(2))],
            Constraint::eq(Term::var(Var(7)), Term::int(-3)),
        );
        let back = parse_atom_exact(&a.to_string()).unwrap();
        assert_eq!(back, a, "variable ids must survive the round trip");
        // Renaming-fresh parsing would have allocated X0, X1 instead.
        let renamed = parse_atom(&a.to_string()).unwrap();
        assert_ne!(renamed, a);
        // Non-canonical variable names are an error in exact mode.
        assert!(parse_atom_exact("p(Foo)").is_err());
        assert!(parse_atom_exact("p(_G1)").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let a = ConstrainedAtom::new(
            "p",
            vec![
                Term::Const(Value::str("a\n\t\r\\\"z")),
                Term::Const(Value::str("héllo")),
            ],
            Constraint::truth(),
        );
        assert_eq!(parse_atom_exact(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn wal_payloads_round_trip() {
        let batch = UpdateBatch::deleting(vec![ConstrainedAtom::new(
            "b",
            vec![Term::var(Var(0))],
            Constraint::eq(Term::var(Var(0)), Term::int(6)),
        )])
        .insert(ConstrainedAtom::new(
            "c",
            vec![Term::int(1), Term::Const(Value::str("x"))],
            Constraint::truth(),
        ));
        for payload in [
            WalPayload::Batch {
                epoch: 12,
                ticket_base: 5,
                batch,
            },
            WalPayload::Recovery { shard: 1, epoch: 7 },
            WalPayload::Checkpoint { epoch: 16 },
            WalPayload::Health { epoch: 17 },
        ] {
            let text = render_wal_payload(&payload);
            assert_eq!(parse_wal_payload(&text).unwrap(), payload, "{text}");
        }
    }

    #[test]
    fn wal_payload_errors_carry_positions() {
        assert!(parse_wal_payload("").is_err());
        assert!(
            parse_wal_payload("batch epoch=1").is_err(),
            "missing tickets="
        );
        assert!(parse_wal_payload("batch epoch=1 tickets=0 junk").is_err());
        assert!(parse_wal_payload("mystery epoch=1").is_err());
        assert!(parse_wal_payload("checkpoint epoch=1\n+ p(X0)").is_err());
        let err = parse_wal_payload("batch epoch=1 tickets=0\n* p(X0)").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_wal_payload("batch epoch=1 tickets=0\n- p(X0)\n+ p(").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn entries_round_trip_supports_and_children() {
        let atom = ConstrainedAtom::new(
            "a",
            vec![Term::var(Var(3))],
            Constraint::cmp(Term::var(Var(3)), CmpOp::Ge, Term::int(0)),
        );
        let support = Support::node(
            Producer::Clause(ClauseId(4)),
            vec![
                Support::node(
                    Producer::Clause(ClauseId(2)),
                    vec![Support::leaf(Producer::Clause(ClauseId(3)))],
                ),
                Support::leaf(Producer::External(9)),
            ],
        );
        let children = vec![
            vec![Term::var(Var(3))],
            vec![Term::int(2), Term::var(Var(3))],
        ];
        let line = render_entry(&atom, Some(&support), &children);
        let parsed = parse_entry(&line).unwrap();
        assert_eq!(parsed.atom, atom);
        assert_eq!(parsed.support.as_ref(), Some(&support));
        assert_eq!(parsed.children_args, children);

        // Plain-mode entries: no support, no children.
        let line = render_entry(&atom, None, &[]);
        let parsed = parse_entry(&line).unwrap();
        assert_eq!(parsed.atom, atom);
        assert_eq!(parsed.support, None);
        assert!(parsed.children_args.is_empty());

        // An empty child group survives.
        let line = render_entry(&atom, None, &[vec![]]);
        assert_eq!(parse_entry(&line).unwrap().children_args, vec![Vec::new()]);
    }

    #[test]
    fn entry_parse_rejects_malformed_supports() {
        assert!(parse_entry("a(X0) spt x(1) args").is_err());
        assert!(parse_entry("a(X0) spt n(n(c(1), c(2)), c(3)) args").is_err());
        assert!(parse_entry("a(X0) spt c(-1) args").is_err());
        assert!(parse_entry("a(X0) spt none args (X0) trailing").is_err());
        assert!(parse_entry("a(X0) args").is_err());
    }
}
