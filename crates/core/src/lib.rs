//! # mmv-core — Efficient Maintenance of Materialized Mediated Views
//!
//! A faithful implementation of the algorithms of Lu, Moerkotte, Schu &
//! Subrahmanian, *Efficient Maintenance of Materialized Mediated Views*
//! (SIGMOD 1995): incremental maintenance of **non-ground** materialized
//! views over *constrained databases* (mediators in the HERMES style,
//! generalizing Kanellakis-Kuper-Revesz constrained databases).
//!
//! ## The model
//!
//! A mediator is a set of numbered clauses
//! `A(t⃗0) <- D1 & … & Dm || A1(t⃗1), …, An(t⃗n)` ([`program`]), where the
//! `Di` are constraints — domain-call atoms `in(X, dom:f(args))` reaching
//! into external systems, equalities, disequalities, comparisons. The
//! materialized view is a set of *constrained atoms* `A(X⃗) <- φ`
//! ([`atom`], [`view`]) computed by iterating a fixpoint operator
//! ([`tp`]): the Gabbrielli–Levi `T_P`, or the paper's `W_P` which defers
//! all satisfiability checking to query time.
//!
//! ## The algorithms
//!
//! | Paper | Module | What it does |
//! |-------|--------|--------------|
//! | Algorithm 1 (Extended DRed) | [`delete_dred`] | deletion with overestimate + rederivation, on duplicate-free views |
//! | Algorithm 2 (StDel) | [`delete_stdel`] | deletion via supports ([`support`]), **no rederivation** |
//! | Algorithm 3 | [`insert`] | insertion with upward `P_ADD` propagation |
//! | Algorithms 1–3 over update *sets* | [`batch`] | batched transactions: one maintenance pass per [`UpdateBatch`] |
//! | §4 (`W_P`) | [`external`] | zero-cost maintenance under external domain updates (Theorem 4, Corollary 1) |
//! | Declarative semantics (Theorems 1–3) | [`semantics`] | executable oracles the algorithms are tested against |
//!
//! ## Quick start
//!
//! ```
//! use mmv_core::parser::parse_program;
//! use mmv_core::parser::parse_atom;
//! use mmv_core::tp::{fixpoint, FixpointConfig, Operator};
//! use mmv_core::view::SupportMode;
//! use mmv_core::delete_stdel::stdel_delete;
//! use mmv_constraints::{NoDomains, SolverConfig, Value};
//!
//! let parsed = parse_program(
//!     "b(X) <- X >= 5.  a(X) <- || b(X).  c(X) <- || a(X).",
//! ).unwrap();
//! let (mut view, _) = fixpoint(
//!     &parsed.db, &NoDomains, Operator::Tp,
//!     SupportMode::WithSupports, &FixpointConfig::default(),
//! ).unwrap();
//! assert_eq!(view.len(), 3);
//!
//! // Delete b(6): the deletion propagates to a and c along supports,
//! // with no rederivation.
//! let deletion = parse_atom("b(X) <- X = 6").unwrap();
//! stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
//! let hits = view.query("c", &[Some(Value::int(6))], &NoDomains,
//!                       &SolverConfig::default()).unwrap();
//! assert!(hits.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atom;
pub mod batch;
pub mod delete_dred;
pub mod delete_stdel;
pub mod external;
pub mod insert;
pub mod normalize;
pub mod obs;
pub mod parser;
pub mod pool;
pub mod program;
pub mod semantics;
pub mod shard;
pub mod store;
pub mod support;
pub mod tp;
pub mod view;

pub use atom::{ConstrainedAtom, Instances};
pub use batch::{
    apply_batch, apply_batch_ticketed, BatchError, BatchStats, DeleteStats, UpdateBatch,
};
pub use delete_dred::{dred_delete, dred_delete_batch, DredError, ExtDredStats};
pub use delete_stdel::{stdel_delete, stdel_delete_batch, StDelError, StDelStats};
pub use external::{MaintenanceAction, MaintenanceStrategy, MediatedMaterializedView};
pub use insert::{insert_atom, insert_batch, insert_batch_ticketed, InsertBatchStats, InsertStats};
pub use parser::{
    parse_atom, parse_atom_exact, parse_entry, parse_program, parse_wal_payload, render_entry,
    render_wal_payload, ParseError, Parsed, ParsedEntry, WalPayload,
};
pub use pool::{panic_message, PoolFaultHook, PoolMetrics, WorkerPool};
pub use program::{BodyAtom, Clause, ClauseId, ConstrainedDatabase, ValidationIssue};
pub use semantics::{
    batch_oracle, deletion_oracle, insertion_oracle, recompute_instances, OracleError,
};
pub use shard::{ShardId, ShardMap, ShardPart, ShardSpec};
pub use store::{SharedMap, SharedVec};
pub use support::{Producer, Support};
pub use tp::{
    fixpoint, fixpoint_seeded, FixpointConfig, FixpointError, FixpointStats, Operator,
    ParallelFixpoint,
};
pub use view::{EntryId, GroundFact, InstanceError, MaterializedView, ShareStats, SupportMode};
