//! Observability hooks for the core maintenance algorithms.
//!
//! [`CoreMetrics`] owns detached `mmv-obs` counters for the fixpoint,
//! Extended DRed, StDel, insertion, and copy-on-write store statistics.
//! The algorithms themselves stay metric-free — they keep returning their
//! plain stats structs ([`FixpointStats`], [`ExtDredStats`], ...) and a
//! caller (the view service) feeds those into a `CoreMetrics` after each
//! batch via [`CoreMetrics::record_batch`]. Recording is a handful of
//! relaxed atomic adds; registration into a
//! [`mmv_obs::MetricsRegistry`] happens once at service build time.

use crate::batch::{BatchStats, DeleteStats};
use crate::delete_dred::ExtDredStats;
use crate::tp::FixpointStats;
use mmv_obs::{Counter, MetricsRegistry};

/// Detached counters for every statistic the core algorithms report.
#[derive(Clone, Debug, Default)]
pub struct CoreMetrics {
    /// Semi-naive fixpoint rounds executed.
    pub fixpoint_iterations: Counter,
    /// Derivations constructed before dedup/solvability filtering.
    pub fixpoint_derivations: Counter,
    /// Derivations discarded by the `T_P` solvability check.
    pub fixpoint_pruned_unsolvable: Counter,
    /// Derivations discarded as syntactically false.
    pub fixpoint_pruned_syntactic: Counter,
    /// Join-position lookups answered by the constant-argument index.
    pub index_probes: Counter,
    /// Candidate entries scanned across all join-position lookups.
    pub candidates_scanned: Counter,
    /// Entries weakened by Extended DRed's over-deletion step.
    pub dred_weakened: Counter,
    /// Entries added back by Extended DRed rederivation.
    pub dred_rederived: Counter,
    /// Entries removed by either deletion algorithm.
    pub delete_removed: Counter,
    /// Satisfiability tests performed by the deletion algorithms.
    pub delete_solver_calls: Counter,
    /// Entries replaced by StDel (direct + support propagation).
    pub stdel_replacements: Counter,
    /// Base entries materialized by batched insertion.
    pub insert_added: Counter,
    /// Entries derived by upward insertion propagation.
    pub insert_propagated: Counter,
    /// Entry-slab pages copied because they were shared with a snapshot.
    pub store_entry_pages_copied: Counter,
    /// Predicate indexes copied because they were shared with a snapshot.
    pub store_pred_indexes_copied: Counter,
    /// `by_const` key/value pairs physically cloned while un-sharing
    /// trie leaves (the sub-page CoW cost; compare against whole-index
    /// key counts to see the saving).
    pub store_by_const_keys_copied: Counter,
    /// Live-slot pairs cloned while un-sharing trie leaves.
    pub store_slot_keys_copied: Counter,
}

impl CoreMetrics {
    /// Creates a fresh set of zeroed, unregistered counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one batch's statistics into the counters.
    pub fn record_batch(&self, stats: &BatchStats) {
        stats.inserts.fixpoint.record_into(self);
        self.insert_added.add(stats.inserts.added as u64);
        self.insert_propagated.add(stats.inserts.propagated as u64);
        match &stats.deletes {
            DeleteStats::None => {}
            DeleteStats::Dred(d) => d.record_into(self),
            DeleteStats::StDel(s) => {
                self.stdel_replacements
                    .add((s.direct_replacements + s.propagated_replacements) as u64);
                self.delete_removed.add(s.removed as u64);
                self.delete_solver_calls.add(s.solver_calls as u64);
            }
        }
    }

    /// Records copy-on-write page/index copies (a delta, not a total).
    pub fn record_copies(&self, entry_pages: u64, pred_indexes: u64) {
        self.store_entry_pages_copied.add(entry_pages);
        self.store_pred_indexes_copied.add(pred_indexes);
    }

    /// Records sub-page key-level copies (a delta, not a total): the
    /// `by_const` and slot pairs cloned by trie-leaf un-sharing.
    pub fn record_key_copies(&self, by_const_keys: u64, slot_keys: u64) {
        self.store_by_const_keys_copied.add(by_const_keys);
        self.store_slot_keys_copied.add(slot_keys);
    }

    /// Registers every counter into `registry` under its `mmv_` name.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        let c = |name, help, handle: &Counter| {
            registry.register_counter(name, help, &[], handle);
        };
        c(
            "mmv_fixpoint_iterations_total",
            "Semi-naive fixpoint rounds executed",
            &self.fixpoint_iterations,
        );
        c(
            "mmv_fixpoint_derivations_total",
            "Derivations constructed before filtering",
            &self.fixpoint_derivations,
        );
        c(
            "mmv_fixpoint_pruned_unsolvable_total",
            "Derivations discarded by the T_P solvability check",
            &self.fixpoint_pruned_unsolvable,
        );
        c(
            "mmv_fixpoint_pruned_syntactic_total",
            "Derivations discarded as syntactically false",
            &self.fixpoint_pruned_syntactic,
        );
        c(
            "mmv_fixpoint_index_probes_total",
            "Join lookups answered by the constant-argument index",
            &self.index_probes,
        );
        c(
            "mmv_fixpoint_candidates_scanned_total",
            "Candidate entries scanned across join lookups",
            &self.candidates_scanned,
        );
        c(
            "mmv_dred_weakened_total",
            "Entries weakened by Extended DRed over-deletion",
            &self.dred_weakened,
        );
        c(
            "mmv_dred_rederived_total",
            "Entries rederived by Extended DRed",
            &self.dred_rederived,
        );
        c(
            "mmv_delete_removed_total",
            "Entries removed by the deletion algorithms",
            &self.delete_removed,
        );
        c(
            "mmv_delete_solver_calls_total",
            "Satisfiability tests performed during deletion",
            &self.delete_solver_calls,
        );
        c(
            "mmv_stdel_replacements_total",
            "Entries replaced by StDel",
            &self.stdel_replacements,
        );
        c(
            "mmv_insert_added_total",
            "Base entries materialized by insertion",
            &self.insert_added,
        );
        c(
            "mmv_insert_propagated_total",
            "Entries derived by insertion propagation",
            &self.insert_propagated,
        );
        c(
            "mmv_store_entry_pages_copied_total",
            "CoW entry-slab pages copied for snapshot isolation",
            &self.store_entry_pages_copied,
        );
        c(
            "mmv_store_pred_indexes_copied_total",
            "CoW predicate indexes copied for snapshot isolation",
            &self.store_pred_indexes_copied,
        );
        c(
            "mmv_store_by_const_keys_copied_total",
            "Sub-page CoW: by_const key/value pairs cloned by trie-leaf un-sharing",
            &self.store_by_const_keys_copied,
        );
        c(
            "mmv_store_slot_keys_copied_total",
            "Sub-page CoW: live-slot pairs cloned by trie-leaf un-sharing",
            &self.store_slot_keys_copied,
        );
    }
}

impl FixpointStats {
    /// Feeds this run's counters into a [`CoreMetrics`].
    pub fn record_into(&self, m: &CoreMetrics) {
        m.fixpoint_iterations.add(self.iterations as u64);
        m.fixpoint_derivations.add(self.derivations_tried as u64);
        m.fixpoint_pruned_unsolvable
            .add(self.pruned_unsolvable as u64);
        m.fixpoint_pruned_syntactic
            .add(self.pruned_syntactic as u64);
        m.index_probes.add(self.index_probes as u64);
        m.candidates_scanned.add(self.candidates_scanned as u64);
    }
}

impl ExtDredStats {
    /// Feeds this run's counters into a [`CoreMetrics`].
    pub fn record_into(&self, m: &CoreMetrics) {
        m.dred_weakened.add(self.weakened as u64);
        m.dred_rederived.add(self.rederived as u64);
        m.delete_removed.add(self.removed as u64);
        m.delete_solver_calls.add(self.solver_calls as u64);
        m.index_probes.add(self.index_probes as u64);
        m.candidates_scanned.add(self.candidates_scanned as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insert::InsertBatchStats;

    #[test]
    fn batch_stats_feed_counters() {
        let m = CoreMetrics::new();
        let stats = BatchStats {
            deletes: DeleteStats::Dred(ExtDredStats {
                weakened: 2,
                rederived: 1,
                removed: 3,
                solver_calls: 7,
                index_probes: 5,
                candidates_scanned: 11,
                ..ExtDredStats::default()
            }),
            inserts: InsertBatchStats {
                added: 4,
                propagated: 6,
                fixpoint: FixpointStats {
                    iterations: 2,
                    derivations_tried: 9,
                    index_probes: 8,
                    ..FixpointStats::default()
                },
            },
            view_entries: 100,
        };
        m.record_batch(&stats);
        assert_eq!(m.fixpoint_iterations.get(), 2);
        assert_eq!(m.fixpoint_derivations.get(), 9);
        assert_eq!(m.index_probes.get(), 8 + 5);
        assert_eq!(m.candidates_scanned.get(), 11);
        assert_eq!(m.dred_weakened.get(), 2);
        assert_eq!(m.delete_removed.get(), 3);
        assert_eq!(m.insert_added.get(), 4);
        assert_eq!(m.insert_propagated.get(), 6);

        let reg = MetricsRegistry::new();
        m.register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("mmv_fixpoint_iterations_total 2"), "{text}");
        mmv_obs::validate_prometheus(&text).unwrap();
    }
}
