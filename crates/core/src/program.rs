//! Constrained databases (mediators): numbered clauses of the form
//! `A ← D1 ∧ … ∧ Dm ‖ A1, …, An` (paper §2.1).

use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{Constraint, Term, Var, VarGen};
use std::fmt;
use std::sync::Arc;

/// The number of a clause within its database (the paper's `Cn(C)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClauseId(pub usize);

impl fmt::Display for ClauseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A body atom `Ai(t⃗i)` (ordinary, non-constraint).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BodyAtom {
    /// Predicate name.
    pub pred: Arc<str>,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl BodyAtom {
    /// Builds a body atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Self {
        BodyAtom {
            pred: Arc::from(pred),
            args,
        }
    }
}

impl fmt::Display for BodyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A clause `head(t⃗0) ← φ0 ‖ A1(t⃗1), …, An(t⃗n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Head predicate.
    pub head_pred: Arc<str>,
    /// Head argument terms `t⃗0`.
    pub head_args: Vec<Term>,
    /// The constraint part `φ0` (DCA-atoms, equalities, …).
    pub constraint: Constraint,
    /// The ordinary body atoms.
    pub body: Vec<BodyAtom>,
}

impl Clause {
    /// Builds a clause.
    pub fn new(
        head_pred: &str,
        head_args: Vec<Term>,
        constraint: Constraint,
        body: Vec<BodyAtom>,
    ) -> Self {
        Clause {
            head_pred: Arc::from(head_pred),
            head_args,
            constraint,
            body,
        }
    }

    /// A constrained fact (empty body).
    pub fn fact(head_pred: &str, head_args: Vec<Term>, constraint: Constraint) -> Self {
        Clause::new(head_pred, head_args, constraint, vec![])
    }

    /// All variables of the clause, deduplicated in occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.head_args {
            t.collect_vars(&mut out);
        }
        for l in &self.constraint.lits {
            l.collect_vars(&mut out);
        }
        for a in &self.body {
            for t in &a.args {
                t.collect_vars(&mut out);
            }
        }
        let mut seen = mmv_constraints::fxhash::FxHashSet::default();
        out.retain(|v| seen.insert(*v));
        out
    }

    /// Standardizes the clause apart with fresh variables.
    pub fn rename(&self, gen: &mut VarGen) -> Clause {
        let mut map: FxHashMap<Var, Var> = FxHashMap::default();
        Clause {
            head_pred: self.head_pred.clone(),
            head_args: self
                .head_args
                .iter()
                .map(|t| t.rename_into(&mut map, gen))
                .collect(),
            constraint: self.constraint.rename_into(&mut map, gen),
            body: self
                .body
                .iter()
                .map(|a| BodyAtom {
                    pred: a.pred.clone(),
                    args: a
                        .args
                        .iter()
                        .map(|t| t.rename_into(&mut map, gen))
                        .collect(),
                })
                .collect(),
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_pred)?;
        for (i, a) in self.head_args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if !self.constraint.is_truth() {
            write!(f, " <- {}", self.constraint)?;
        }
        if !self.body.is_empty() {
            if self.constraint.is_truth() {
                write!(f, " <-")?;
            }
            write!(f, " || ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A constrained database: an ordered, numbered set of clauses.
///
/// Clause numbers are normally positional (`ClauseId(k)` is the `k`-th
/// pushed clause), but a database produced by
/// [`ConstrainedDatabase::restrict_to_heads`] keeps the *original*
/// numbers of the clauses it retains — supports recorded against the
/// restriction are identical to supports recorded against the full
/// database, which is what lets a per-shard writer lane maintain its
/// view with only its own clauses.
#[derive(Debug, Clone, Default)]
pub struct ConstrainedDatabase {
    clauses: Vec<Clause>,
    /// The number of each clause, parallel to `clauses`, strictly
    /// ascending. Identity (`numbers[k] == ClauseId(k)`) unless the
    /// database is a restriction.
    numbers: Vec<ClauseId>,
    /// Clause ids by head predicate, for head-indexed access.
    by_head: FxHashMap<Arc<str>, Vec<ClauseId>>,
    /// First variable id guaranteed unused by any clause.
    var_watermark: u32,
}

impl ConstrainedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from clauses.
    pub fn from_clauses<I: IntoIterator<Item = Clause>>(clauses: I) -> Self {
        let mut db = Self::new();
        for c in clauses {
            db.push(c);
        }
        db
    }

    /// Appends a clause, returning its id (one past the last number in
    /// use, so pushes after a restriction keep numbers strictly
    /// ascending).
    ///
    /// Caution: on a restriction the minted id, while unused *here*,
    /// may name an unrelated clause of the parent database — supports
    /// recorded against a grown restriction are then incomparable with
    /// the parent's. Treat restrictions as read-only clause views for
    /// maintenance (as the sharded service does); grow the parent and
    /// re-restrict instead.
    pub fn push(&mut self, clause: Clause) -> ClauseId {
        let id = ClauseId(self.numbers.last().map_or(0, |c| c.0 + 1));
        self.push_numbered(id, clause);
        id
    }

    /// Appends a clause under an explicit number (used by restrictions
    /// and the deletion rewrites to preserve original numbering).
    /// Numbers must arrive strictly ascending.
    pub fn push_numbered(&mut self, id: ClauseId, clause: Clause) {
        assert!(
            self.numbers.last().is_none_or(|c| c.0 < id.0),
            "clause numbers must be strictly ascending"
        );
        for v in clause.vars() {
            self.var_watermark = self.var_watermark.max(v.0 + 1);
        }
        self.by_head
            .entry(clause.head_pred.clone())
            .or_default()
            .push(id);
        self.numbers.push(id);
        self.clauses.push(clause);
    }

    /// The clause with the given id. Panics if the database does not
    /// contain it (possible only on restrictions).
    pub fn clause(&self, id: ClauseId) -> &Clause {
        // Identity numbering (the common case) indexes directly; a
        // restriction falls back to binary search over the (ascending)
        // retained numbers.
        if self.numbers.get(id.0) == Some(&id) {
            return &self.clauses[id.0];
        }
        let idx = self
            .numbers
            .binary_search(&id)
            .unwrap_or_else(|_| panic!("clause {id} not in this database"));
        &self.clauses[idx]
    }

    /// All clauses with their ids.
    pub fn clauses(&self) -> impl Iterator<Item = (ClauseId, &Clause)> {
        self.numbers
            .iter()
            .zip(&self.clauses)
            .map(|(&id, c)| (id, c))
    }

    /// The sub-database of clauses whose head predicate satisfies
    /// `keep`, with original clause numbers (and the variable watermark)
    /// preserved. When `keep` is closed under clause dependencies — as a
    /// shard of [`crate::shard::ShardMap`] is — the restriction is
    /// self-contained: every body predicate of a retained clause is
    /// defined by retained clauses (or by none at all, exactly as in the
    /// full database).
    pub fn restrict_to_heads(&self, keep: impl Fn(&str) -> bool) -> ConstrainedDatabase {
        let mut out = ConstrainedDatabase::new();
        for (id, clause) in self.clauses() {
            if keep(&clause.head_pred) {
                out.push_numbered(id, clause.clone());
            }
        }
        out.var_watermark = self.var_watermark;
        out
    }

    /// Ids of clauses whose head predicate is `pred`.
    pub fn clauses_for_head(&self, pred: &str) -> &[ClauseId] {
        self.by_head.get(pred).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the database has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// A variable generator guaranteed to produce variables unused by any
    /// clause of this database.
    pub fn fresh_gen(&self) -> VarGen {
        VarGen::starting_at(self.var_watermark)
    }

    /// Head predicates (intensional and fact predicates alike), sorted.
    pub fn predicates(&self) -> Vec<Arc<str>> {
        let mut ps: Vec<Arc<str>> = self.by_head.keys().cloned().collect();
        ps.sort();
        ps
    }

    /// Static sanity checks: inconsistent predicate arities (across heads
    /// and body uses) and body predicates with no defining clause. These
    /// are the mistakes a hand-written mediator most often contains; none
    /// is fatal (an undefined body predicate simply never matches), so
    /// they are reported rather than rejected.
    pub fn validate(&self) -> Vec<ValidationIssue> {
        let mut issues = Vec::new();
        let mut arity: FxHashMap<Arc<str>, (usize, ClauseId)> = FxHashMap::default();
        let mut check =
            |pred: &Arc<str>, len: usize, cid: ClauseId, issues: &mut Vec<ValidationIssue>| {
                match arity.get(pred) {
                    Some(&(expected, first)) if expected != len => {
                        issues.push(ValidationIssue::ArityMismatch {
                            pred: pred.clone(),
                            expected,
                            first_seen_in: first,
                            got: len,
                            clause: cid,
                        });
                    }
                    Some(_) => {}
                    None => {
                        arity.insert(pred.clone(), (len, cid));
                    }
                }
            };
        for (cid, clause) in self.clauses() {
            check(&clause.head_pred, clause.head_args.len(), cid, &mut issues);
            for b in &clause.body {
                check(&b.pred, b.args.len(), cid, &mut issues);
            }
        }
        for (cid, clause) in self.clauses() {
            for b in &clause.body {
                if self.clauses_for_head(&b.pred).is_empty() {
                    issues.push(ValidationIssue::UndefinedBodyPredicate {
                        pred: b.pred.clone(),
                        clause: cid,
                    });
                }
            }
        }
        issues
    }
}

/// A static problem found by [`ConstrainedDatabase::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationIssue {
    /// A predicate is used with two different arities.
    ArityMismatch {
        /// The predicate.
        pred: Arc<str>,
        /// The arity first seen.
        expected: usize,
        /// Where it was first seen.
        first_seen_in: ClauseId,
        /// The conflicting arity.
        got: usize,
        /// Where the conflict occurs.
        clause: ClauseId,
    },
    /// A body atom references a predicate no clause defines.
    UndefinedBodyPredicate {
        /// The predicate.
        pred: Arc<str>,
        /// The clause whose body references it.
        clause: ClauseId,
    },
}

impl fmt::Display for ValidationIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationIssue::ArityMismatch {
                pred,
                expected,
                first_seen_in,
                got,
                clause,
            } => write!(
                f,
                "predicate {pred:?} used with arity {got} in clause {clause} \
                 but arity {expected} in clause {first_seen_in}"
            ),
            ValidationIssue::UndefinedBodyPredicate { pred, clause } => write!(
                f,
                "clause {clause} references predicate {pred:?}, which no clause defines"
            ),
        }
    }
}

impl fmt::Display for ConstrainedDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (id, c) in self.clauses() {
            writeln!(f, "% clause {id}")?;
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::CmpOp;

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The constrained database of the paper's Example 5.
    pub(crate) fn example5() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    #[test]
    fn clause_numbering_and_head_index() {
        let db = example5();
        assert_eq!(db.len(), 4);
        assert_eq!(db.clauses_for_head("A"), &[ClauseId(0), ClauseId(1)]);
        assert_eq!(db.clauses_for_head("C"), &[ClauseId(3)]);
        assert!(db.clauses_for_head("Z").is_empty());
    }

    #[test]
    fn watermark_covers_clause_vars() {
        let db = example5();
        let mut gen = db.fresh_gen();
        let fresh = gen.fresh();
        assert!(fresh.0 >= 1);
    }

    #[test]
    fn rename_standardizes_apart() {
        let db = example5();
        let mut gen = db.fresh_gen();
        let c1 = db.clause(ClauseId(1)).rename(&mut gen);
        let c2 = db.clause(ClauseId(1)).rename(&mut gen);
        assert_ne!(c1.head_args, c2.head_args);
        // Head and body share the renamed variable consistently.
        assert_eq!(c1.head_args[0], c1.body[0].args[0]);
    }

    #[test]
    fn display_round_trip_shape() {
        let db = example5();
        let s = db.clause(ClauseId(0)).to_string();
        assert_eq!(s, "A(X0) <- X0 <= 3.");
        let s2 = db.clause(ClauseId(3)).to_string();
        assert_eq!(s2, "C(X0) <- || A(X0).");
    }

    #[test]
    fn validation_passes_clean_database() {
        assert!(example5().validate().is_empty());
    }

    #[test]
    fn restriction_preserves_numbering_and_watermark() {
        let db = example5();
        let sub = db.restrict_to_heads(|p| p == "A" || p == "B");
        assert_eq!(sub.len(), 3);
        let ids: Vec<ClauseId> = sub.clauses().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ClauseId(0), ClauseId(1), ClauseId(2)]);
        // Sparse lookup still resolves original ids.
        let only_c = db.restrict_to_heads(|p| p == "C");
        let ids: Vec<ClauseId> = only_c.clauses().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![ClauseId(3)]);
        assert_eq!(only_c.clause(ClauseId(3)).head_pred.as_ref(), "C");
        assert_eq!(only_c.clauses_for_head("C"), &[ClauseId(3)]);
        // The watermark still dominates every variable of the full db.
        assert_eq!(only_c.fresh_gen().watermark(), db.fresh_gen().watermark());
        // Pushing after a restriction keeps numbers ascending.
        let mut grown = only_c;
        let id = grown.push(Clause::fact("D", vec![x()], Constraint::truth()));
        assert_eq!(id, ClauseId(4));
    }

    #[test]
    fn validation_reports_arity_mismatch() {
        let mut db = example5();
        db.push(Clause::fact(
            "A",
            vec![x(), Term::var(Var(1))],
            Constraint::truth(),
        ));
        let issues = db.validate();
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::ArityMismatch { pred, .. } if pred.as_ref() == "A")
        ));
    }

    #[test]
    fn validation_reports_undefined_body_predicate() {
        let mut db = example5();
        db.push(Clause::new(
            "D",
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new("ghost", vec![x()])],
        ));
        let issues = db.validate();
        assert!(issues.iter().any(
            |i| matches!(i, ValidationIssue::UndefinedBodyPredicate { pred, .. } if pred.as_ref() == "ghost")
        ));
        // Render all issues (exercises Display).
        for i in &issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
