//! The Extended DRed algorithm — Algorithm 1 of the paper (§3.1.1),
//! generalizing the ground DRed algorithm of Gupta, Mumick &
//! Subrahmanian [22] to constrained databases.
//!
//! Given a deletion request `A(X⃗) ← φ` against a duplicate-free
//! ([`SupportMode::Plain`]) view `M` of database `P`:
//!
//! 1. **Del**: intersect the request with the matching view atoms — only
//!    instances actually in the view are deleted.
//! 2. **Unfold `P_OUT`**: the overestimate of possibly-deleted atoms,
//!    propagating the deletion through clauses (exactly one body child
//!    from the previous layer, the rest from `M`).
//! 3. **Over-delete to `M'`**: weaken every overlapping view atom with
//!    `not(pout-region)`, so `[M'] = [M] \ [P_OUT]`.
//! 4. **Rederive**: close `M'` under the *rewritten* database `P'`
//!    (clauses for the deleted predicate carry `not(Del)`), restricted to
//!    derivations that can restore instances inside a `P_OUT` region —
//!    the paper's step 3 with the `P''` pruning realized as a
//!    region-overlap test (see DESIGN.md). This rederivation is the
//!    expensive step StDel eliminates.

use crate::atom::ConstrainedAtom;
use crate::program::{Clause, ConstrainedDatabase};
use crate::support::{Producer, Support};
use crate::tp::{derive, FixpointConfig, FixpointError};
use crate::view::{canonicalize, EntryId, MaterializedView, SupportMode};
use mmv_constraints::fxhash::{FxHashMap, FxHashSet};
use mmv_constraints::{satisfiable_with, Constraint, DomainResolver, Lit, Truth};
use std::fmt;
use std::sync::Arc;

/// Statistics of one Extended DRed run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExtDredStats {
    /// Atoms in the `Del` set.
    pub del_atoms: usize,
    /// Atoms in the unfolded overestimate `P_OUT`.
    pub pout_atoms: usize,
    /// View entries weakened in the over-deletion step.
    pub weakened: usize,
    /// Entries added back by rederivation.
    pub rederived: usize,
    /// Entries removed because their constraint became unsolvable.
    pub removed: usize,
    /// Satisfiability tests performed.
    pub solver_calls: usize,
}

/// Extended DRed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DredError {
    /// The view must be duplicate-free (`SupportMode::Plain`).
    NeedsPlainView,
    /// A fixpoint budget was exhausted during unfolding or rederivation.
    Budget(FixpointError),
}

impl fmt::Display for DredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DredError::NeedsPlainView => {
                write!(f, "Extended DRed requires a SupportMode::Plain view")
            }
            DredError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DredError {}

/// Deletes `[deletion]`'s instances from a plain view (Algorithm 1).
pub fn dred_delete(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    deletion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<ExtDredStats, DredError> {
    if view.mode() != SupportMode::Plain {
        return Err(DredError::NeedsPlainView);
    }
    let mut stats = ExtDredStats::default();

    // ---- Del: the deletion intersected with the view --------------------
    let mut del: Vec<ConstrainedAtom> = Vec::new();
    for id in view.entries_for_pred(&deletion.pred) {
        let atom = view.entry(id).atom.clone();
        if atom.args.len() != deletion.args.len() {
            continue;
        }
        let dpsi = deletion
            .constraint_at(&atom.args, view.var_gen_mut())
            .expect("arity checked");
        let region = atom.constraint.clone().and(dpsi);
        stats.solver_calls += 1;
        if satisfiable_with(&region, resolver, &config.solver) == Truth::Unsat {
            continue;
        }
        del.push(ConstrainedAtom {
            pred: atom.pred.clone(),
            args: atom.args.clone(),
            constraint: region,
        });
    }
    stats.del_atoms = del.len();
    if del.is_empty() {
        return Ok(stats);
    }

    // ---- Step 1: unfold P_OUT --------------------------------------------
    let mut pout: Vec<ConstrainedAtom> = Vec::new();
    let mut seen: FxHashSet<ConstrainedAtom> = FxHashSet::default();
    for d in &del {
        seen.insert(canonicalize(d));
        pout.push(d.clone());
    }
    let mut delta: Vec<ConstrainedAtom> = del.clone();
    let throwaway = Support::leaf(Producer::External(u64::MAX));
    let mut rounds = 0usize;
    while !delta.is_empty() {
        rounds += 1;
        if rounds > config.max_iterations {
            return Err(DredError::Budget(FixpointError::IterationBudget {
                iterations: rounds,
            }));
        }
        let mut next: Vec<ConstrainedAtom> = Vec::new();
        for (cid, clause) in db.clauses() {
            let n = clause.body.len();
            if n == 0 {
                continue;
            }
            // Exactly one body position from the delta, the rest from M.
            for dpos in 0..n {
                let dmatches: Vec<&ConstrainedAtom> = delta
                    .iter()
                    .filter(|a| a.pred == clause.body[dpos].pred)
                    .collect();
                if dmatches.is_empty() {
                    continue;
                }
                let other_lists: Vec<Vec<EntryId>> = (0..n)
                    .map(|i| {
                        if i == dpos {
                            Vec::new()
                        } else {
                            view.entries_for_pred(&clause.body[i].pred)
                        }
                    })
                    .collect();
                if (0..n).any(|i| i != dpos && other_lists[i].is_empty()) {
                    continue;
                }
                for dm in &dmatches {
                    // Odometer over the non-delta positions.
                    let mut combo = vec![0usize; n];
                    'combos: loop {
                        let owned: Vec<ConstrainedAtom> = (0..n)
                            .map(|i| {
                                if i == dpos {
                                    (*dm).clone()
                                } else {
                                    view.entry(other_lists[i][combo[i]]).atom.clone()
                                }
                            })
                            .collect();
                        let children: Vec<(&ConstrainedAtom, Support)> =
                            owned.iter().map(|a| (a, throwaway.clone())).collect();
                        if let Some(derived) = derive(cid, clause, &children, view.var_gen_mut()) {
                            stats.solver_calls += 1;
                            if satisfiable_with(&derived.atom.constraint, resolver, &config.solver)
                                != Truth::Unsat
                            {
                                let canon = canonicalize(&derived.atom);
                                if seen.insert(canon) {
                                    next.push(derived.atom);
                                }
                            }
                        }
                        for i in 0..n {
                            if i == dpos {
                                continue;
                            }
                            combo[i] += 1;
                            if combo[i] < other_lists[i].len() {
                                continue 'combos;
                            }
                            combo[i] = 0;
                        }
                        break;
                    }
                }
            }
        }
        pout.extend(next.iter().cloned());
        if pout.len() > config.max_entries {
            return Err(DredError::Budget(FixpointError::EntryBudget {
                entries: pout.len(),
            }));
        }
        delta = next;
    }
    stats.pout_atoms = pout.len();

    // ---- Step 2: over-delete to M' ----------------------------------------
    let mut pout_by_pred: FxHashMap<Arc<str>, Vec<ConstrainedAtom>> = FxHashMap::default();
    for p in &pout {
        pout_by_pred
            .entry(p.pred.clone())
            .or_default()
            .push(p.clone());
    }
    let mut touched: Vec<EntryId> = Vec::new();
    for (pred, pouts) in &pout_by_pred {
        for id in view.entries_for_pred(pred) {
            let atom = view.entry(id).atom.clone();
            let mut constraint = atom.constraint.clone();
            let mut changed = false;
            for p in pouts {
                if p.args.len() != atom.args.len() {
                    continue;
                }
                let ppsi = p
                    .constraint_at(&atom.args, view.var_gen_mut())
                    .expect("arity checked");
                stats.solver_calls += 1;
                if satisfiable_with(
                    &constraint.clone().and(ppsi.clone()),
                    resolver,
                    &config.solver,
                ) == Truth::Unsat
                {
                    continue;
                }
                constraint = constraint.and_lit(Lit::Not(ppsi));
                changed = true;
            }
            if changed {
                let simplified = match mmv_constraints::simplify(&constraint) {
                    mmv_constraints::Simplified::Constraint(c) => c,
                    mmv_constraints::Simplified::Unsat => {
                        Constraint::lit(Lit::Not(Constraint::truth()))
                    }
                };
                view.replace_constraint(id, simplified);
                touched.push(id);
                stats.weakened += 1;
            }
        }
    }

    // ---- Step 3: rederive within the P_OUT regions over P' ----------------
    let pprime = rewrite_for_deletion(db, &del);
    let mut delta_ids: Vec<EntryId> = view.live_entries().map(|(id, _)| id).collect();
    // Constrained facts (empty-body clauses) of P' can themselves restore
    // deleted regions — e.g. Example 4's independent `A(X) <- X >= 3`.
    for (cid, clause) in pprime.clauses() {
        if !clause.body.is_empty() {
            continue;
        }
        let Some(regions) = pout_by_pred.get(&clause.head_pred) else {
            continue;
        };
        let Some(derived) = derive(cid, clause, &[], view.var_gen_mut()) else {
            continue;
        };
        let mut overlaps = false;
        for p in regions {
            if p.args.len() != derived.atom.args.len() {
                continue;
            }
            let ppsi = p
                .constraint_at(&derived.atom.args, view.var_gen_mut())
                .expect("arity checked");
            stats.solver_calls += 1;
            if satisfiable_with(
                &derived.atom.constraint.clone().and(ppsi),
                resolver,
                &config.solver,
            ) != Truth::Unsat
            {
                overlaps = true;
                break;
            }
        }
        if !overlaps {
            continue;
        }
        stats.solver_calls += 1;
        if satisfiable_with(&derived.atom.constraint, resolver, &config.solver) != Truth::Unsat {
            if let Some(id) = view.insert(derived.atom, None, vec![]) {
                delta_ids.push(id);
                stats.rederived += 1;
            }
        }
    }
    let mut rounds = 0usize;
    while !delta_ids.is_empty() {
        rounds += 1;
        if rounds > config.max_iterations {
            return Err(DredError::Budget(FixpointError::IterationBudget {
                iterations: rounds,
            }));
        }
        let delta_set: FxHashSet<EntryId> = delta_ids.iter().copied().collect();
        let mut all: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        let mut old: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        let mut delta_by_pred: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        for (id, e) in view.live_entries() {
            all.entry(e.atom.pred.clone()).or_default().push(id);
            if delta_set.contains(&id) {
                delta_by_pred
                    .entry(e.atom.pred.clone())
                    .or_default()
                    .push(id);
            } else {
                old.entry(e.atom.pred.clone()).or_default().push(id);
            }
        }
        let empty: Vec<EntryId> = Vec::new();
        let mut next_ids: Vec<EntryId> = Vec::new();
        for (cid, clause) in pprime.clauses() {
            // Only derivations that might restore a deleted region matter.
            let Some(regions) = pout_by_pred.get(&clause.head_pred) else {
                continue;
            };
            let n = clause.body.len();
            if n == 0 {
                continue;
            }
            for dpos in 0..n {
                let dlist = delta_by_pred.get(&clause.body[dpos].pred).unwrap_or(&empty);
                if dlist.is_empty() {
                    continue;
                }
                let lists: Vec<&[EntryId]> = (0..n)
                    .map(|i| {
                        let src = match i.cmp(&dpos) {
                            std::cmp::Ordering::Less => old.get(&clause.body[i].pred),
                            std::cmp::Ordering::Equal => Some(dlist),
                            std::cmp::Ordering::Greater => all.get(&clause.body[i].pred),
                        };
                        src.map(|v| v.as_slice()).unwrap_or(&[])
                    })
                    .collect();
                if lists.iter().any(|l| l.is_empty()) {
                    continue;
                }
                let mut combo = vec![0usize; n];
                'combos: loop {
                    let owned: Vec<ConstrainedAtom> = (0..n)
                        .map(|i| view.entry(lists[i][combo[i]]).atom.clone())
                        .collect();
                    let children: Vec<(&ConstrainedAtom, Support)> =
                        owned.iter().map(|a| (a, throwaway.clone())).collect();
                    if let Some(derived) = derive(cid, clause, &children, view.var_gen_mut()) {
                        // Keep only derivations overlapping some deleted
                        // region (P''-style pruning), and only solvable
                        // ones.
                        let mut overlaps = false;
                        for p in regions {
                            if p.args.len() != derived.atom.args.len() {
                                continue;
                            }
                            let ppsi = p
                                .constraint_at(&derived.atom.args, view.var_gen_mut())
                                .expect("arity checked");
                            stats.solver_calls += 1;
                            if satisfiable_with(
                                &derived.atom.constraint.clone().and(ppsi),
                                resolver,
                                &config.solver,
                            ) != Truth::Unsat
                            {
                                overlaps = true;
                                break;
                            }
                        }
                        if overlaps {
                            stats.solver_calls += 1;
                            if satisfiable_with(&derived.atom.constraint, resolver, &config.solver)
                                != Truth::Unsat
                            {
                                if let Some(id) = view.insert(derived.atom, None, vec![]) {
                                    next_ids.push(id);
                                    stats.rederived += 1;
                                    if view.len() > config.max_entries {
                                        return Err(DredError::Budget(
                                            FixpointError::EntryBudget {
                                                entries: view.len(),
                                            },
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    for i in 0..n {
                        combo[i] += 1;
                        if combo[i] < lists[i].len() {
                            continue 'combos;
                        }
                        combo[i] = 0;
                    }
                    break;
                }
            }
        }
        delta_ids = next_ids;
    }

    // ---- Hygiene: drop weakened entries that became unsolvable ------------
    for id in touched {
        if !view.entry(id).alive {
            continue;
        }
        let c = view.entry(id).atom.constraint.clone();
        stats.solver_calls += 1;
        if satisfiable_with(&c, resolver, &config.solver) == Truth::Unsat {
            view.remove(id);
            stats.removed += 1;
        }
    }
    Ok(stats)
}

/// The paper's clause rewrite (4): every clause whose head predicate is
/// being deleted from carries `not(Del-region)` tied to its head
/// arguments; all other clauses pass through unchanged. The least model
/// of the result is the *declarative semantics* of the deletion
/// (Theorems 1 and 2 compare the algorithms against it).
pub fn rewrite_for_deletion(
    db: &ConstrainedDatabase,
    del: &[ConstrainedAtom],
) -> ConstrainedDatabase {
    let mut gen = db.fresh_gen();
    let mut out = ConstrainedDatabase::new();
    for (_, clause) in db.clauses() {
        let mut c = clause.clone();
        for d in del {
            if d.pred != clause.head_pred || d.args.len() != clause.head_args.len() {
                continue;
            }
            let dpsi = d
                .constraint_at(&c.head_args, &mut gen)
                .expect("arity checked");
            c = Clause::new(
                &c.head_pred,
                c.head_args.clone(),
                c.constraint.and_lit(Lit::Not(dpsi)),
                c.body.clone(),
            );
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BodyAtom;
    use crate::tp::{fixpoint, Operator};
    use mmv_constraints::{CmpOp, NoDomains, SolverConfig, Term, Value, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The Examples 4/5 database (>= reading; see delete_stdel.rs).
    fn example4_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    fn build_plain(db: &ConstrainedDatabase) -> MaterializedView {
        fixpoint(
            db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn paper_example_4_extended_dred() {
        // Delete B(X) <- X = 6. P_OUT = {B@6, A@6, C@6}; A keeps 6 via
        // the independent clause-0 fact (rederivation), C keeps 6 through
        // the rederived A.
        let db = example4_db();
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(6)));
        let stats = dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.del_atoms, 1);
        // Overestimate covers B, A-via-B, C-via-A (Del + 2 unfolded).
        assert!(stats.pout_atoms >= 3, "pout = {}", stats.pout_atoms);
        let cfg = SolverConfig::default();
        // B lost 6.
        assert!(view
            .query("B", &[Some(Value::int(6))], &NoDomains, &cfg)
            .unwrap()
            .is_empty());
        // A keeps 6 (independent proof, exactly the paper's point).
        assert_eq!(
            view.query("A", &[Some(Value::int(6))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
        // C keeps 6 through A.
        assert_eq!(
            view.query("C", &[Some(Value::int(6))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
        // Untouched instances intact.
        assert_eq!(
            view.query("B", &[Some(Value::int(7))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn dred_on_ground_diamond() {
        // Ground diamond: s -> {l, r} -> t; path facts; deleting one
        // edge keeps reach(t) via the other branch.
        let v0 = Term::var(Var(0));
        let v1 = Term::var(Var(1));
        let v2 = Term::var(Var(2));
        let edge = |a: &str, b: &str| {
            Clause::fact(
                "edge",
                vec![Term::str(a), Term::str(b)],
                Constraint::truth(),
            )
        };
        let db = ConstrainedDatabase::from_clauses(vec![
            edge("s", "l"),
            edge("s", "r"),
            edge("l", "t"),
            edge("r", "t"),
            Clause::new(
                "path2",
                vec![v0.clone(), v1.clone()],
                Constraint::truth(),
                vec![
                    BodyAtom::new("edge", vec![v0.clone(), v2.clone()]),
                    BodyAtom::new("edge", vec![v2.clone(), v1.clone()]),
                ],
            ),
        ]);
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::fact("edge", vec![Value::str("s"), Value::str("l")]);
        dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        // path2(s, t) survives via r.
        assert_eq!(
            view.query(
                "path2",
                &[Some(Value::str("s")), Some(Value::str("t"))],
                &NoDomains,
                &cfg
            )
            .unwrap()
            .len(),
            1
        );
        // edge(s, l) is gone.
        assert!(view
            .query(
                "edge",
                &[Some(Value::str("s")), Some(Value::str("l"))],
                &NoDomains,
                &cfg
            )
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dred_matches_declarative_oracle() {
        // [result] must equal [T_{P'} ↑ ω (∅)] (Theorem 1), checked on a
        // finite-instance program.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(8),
                )),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(5)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(10),
                )),
            ),
        ]);
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::new(
            "A",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(6)),
        );
        // Build Del for the oracle the same way the algorithm does.
        let mut oracle_del: Vec<ConstrainedAtom> = Vec::new();
        for id in view.entries_for_pred("A") {
            let atom = view.entry(id).atom.clone();
            let dpsi = deletion
                .constraint_at(&atom.args, view.var_gen_mut())
                .unwrap();
            oracle_del.push(ConstrainedAtom {
                pred: atom.pred.clone(),
                args: atom.args.clone(),
                constraint: atom.constraint.clone().and(dpsi),
            });
        }
        let pprime = rewrite_for_deletion(&db, &oracle_del);
        let (oracle_view, _) = fixpoint(
            &pprime,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();

        dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        assert_eq!(
            view.instances(&NoDomains, &cfg).unwrap(),
            oracle_view.instances(&NoDomains, &cfg).unwrap()
        );
    }

    #[test]
    fn needs_plain_view() {
        let db = example4_db();
        let mut view = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0;
        let deletion = ConstrainedAtom::fact("B", vec![Value::int(6)]);
        assert_eq!(
            dred_delete(
                &db,
                &mut view,
                &deletion,
                &NoDomains,
                &FixpointConfig::default()
            ),
            Err(DredError::NeedsPlainView)
        );
    }

    #[test]
    fn noop_deletion_leaves_view_unchanged() {
        let db = example4_db();
        let mut view = build_plain(&db);
        let before: Vec<String> = view
            .live_entries()
            .map(|(_, e)| canonicalize(&e.atom).to_string())
            .collect();
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(2)));
        let stats = dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.del_atoms, 0);
        let after: Vec<String> = view
            .live_entries()
            .map(|(_, e)| canonicalize(&e.atom).to_string())
            .collect();
        assert_eq!(before, after);
    }
}
