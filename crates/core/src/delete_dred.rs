//! The Extended DRed algorithm — Algorithm 1 of the paper (§3.1.1),
//! generalizing the ground DRed algorithm of Gupta, Mumick &
//! Subrahmanian \[22\] to constrained databases.
//!
//! Given a deletion request `A(X⃗) ← φ` against a duplicate-free
//! ([`SupportMode::Plain`]) view `M` of database `P`:
//!
//! 1. **Del**: intersect the request with the matching view atoms — only
//!    instances actually in the view are deleted.
//! 2. **Unfold `P_OUT`**: the overestimate of possibly-deleted atoms,
//!    propagating the deletion through clauses (exactly one body child
//!    from the previous layer, the rest from `M`).
//! 3. **Over-delete to `M'`**: weaken every overlapping view atom with
//!    `not(pout-region)`, so `[M'] = [M] \ [P_OUT]`.
//! 4. **Rederive**: close `M'` under the *rewritten* database `P'`
//!    (clauses for the deleted predicate carry `not(Del)`), restricted to
//!    derivations that can restore instances inside a `P_OUT` region —
//!    the paper's step 3 with the `P''` pruning realized as a
//!    region-overlap test (see DESIGN.md). This rederivation is the
//!    expensive step StDel eliminates.

use crate::atom::ConstrainedAtom;
use crate::program::{Clause, ConstrainedDatabase};
use crate::tp::{
    collect_combos, delta_plan, derive, group_by_pred, DeltaSource, FixpointConfig, FixpointError,
    FixpointStats, ParallelFixpoint, RoundScope, RoundState, ATOM_SLOT,
};
use crate::view::{canonicalize, EntryId, MaterializedView, SupportMode};
use mmv_constraints::fxhash::{FxHashMap, FxHashSet};
use mmv_constraints::{satisfiable_with, Constraint, DomainResolver, Lit, Truth, VarGen};
use std::fmt;
use std::sync::Arc;

/// Statistics of one Extended DRed run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExtDredStats {
    /// Atoms in the `Del` set.
    pub del_atoms: usize,
    /// Atoms in the unfolded overestimate `P_OUT`.
    pub pout_atoms: usize,
    /// View entries weakened in the over-deletion step.
    pub weakened: usize,
    /// Entries added back by rederivation.
    pub rederived: usize,
    /// Entries removed because their constraint became unsolvable.
    pub removed: usize,
    /// Satisfiability tests performed.
    pub solver_calls: usize,
    /// Constant-argument index probes during unfolding/rederivation.
    pub index_probes: usize,
    /// Candidate entries scanned during unfolding/rederivation joins.
    pub candidates_scanned: usize,
}

impl ExtDredStats {
    /// Accumulates another run's counters (used when a batch is split
    /// across independent shards and each part reports separately).
    pub fn absorb(&mut self, o: &ExtDredStats) {
        self.del_atoms += o.del_atoms;
        self.pout_atoms += o.pout_atoms;
        self.weakened += o.weakened;
        self.rederived += o.rederived;
        self.removed += o.removed;
        self.solver_calls += o.solver_calls;
        self.index_probes += o.index_probes;
        self.candidates_scanned += o.candidates_scanned;
    }
}

/// Extended DRed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DredError {
    /// The view must be duplicate-free (`SupportMode::Plain`).
    NeedsPlainView,
    /// A fixpoint budget was exhausted during unfolding or rederivation.
    Budget(FixpointError),
}

impl fmt::Display for DredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DredError::NeedsPlainView => {
                write!(f, "Extended DRed requires a SupportMode::Plain view")
            }
            DredError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DredError {}

/// Deletes `[deletion]`'s instances from a plain view (Algorithm 1).
pub fn dred_delete(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    deletion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<ExtDredStats, DredError> {
    dred_delete_batch(db, view, std::slice::from_ref(deletion), resolver, config)
}

/// Deletes the instances of a whole *set* of deletion requests from a
/// plain view in one maintenance pass.
///
/// The batched run is Algorithm 1 applied to the union of the requests:
/// `Del` collects every request's intersection with the view (requests
/// are intersected in order, against the same pre-update view), the
/// `P_OUT` overestimate is unfolded once from the combined frontier, the
/// over-deletion weakens each entry with every overlapping region, and —
/// the payoff — a *single* rederivation fixpoint closes the view under
/// `P'` rewritten with the whole `Del` set. Sequential single-atom
/// deletion pays the rederivation seed (a full live-entry delta) once
/// per request; the batch pays it once total.
pub fn dred_delete_batch(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    deletions: &[ConstrainedAtom],
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<ExtDredStats, DredError> {
    if view.mode() != SupportMode::Plain {
        return Err(DredError::NeedsPlainView);
    }
    // The var gen leaves the view for the duration of the run (see
    // `tp::propagate`): join children stay borrowed from the view while
    // `derive` standardizes apart.
    let mut gen = std::mem::take(view.var_gen_mut());
    let result = dred_delete_inner(db, view, &mut gen, deletions, resolver, config);
    *view.var_gen_mut() = gen;
    result
}

fn dred_delete_inner(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    gen: &mut mmv_constraints::VarGen,
    deletions: &[ConstrainedAtom],
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<ExtDredStats, DredError> {
    let mut stats = ExtDredStats::default();
    let mut jstats = FixpointStats::default();

    // ---- Del: every deletion intersected with the view ------------------
    let mut del: Vec<ConstrainedAtom> = Vec::new();
    for deletion in deletions {
        for &id in view.entries_for_pred(&deletion.pred) {
            let atom = &view.entry(id).atom;
            if atom.args.len() != deletion.args.len() {
                continue;
            }
            let dpsi = deletion
                .constraint_at(&atom.args, gen)
                .expect("arity checked");
            let region = atom.constraint.clone().and(dpsi);
            stats.solver_calls += 1;
            if satisfiable_with(&region, resolver, &config.solver) == Truth::Unsat {
                continue;
            }
            // Keep Del regions compact: they are conjoined into P' and
            // into every over-deleted entry, so redundancy here
            // multiplies across the whole run (acute for batches,
            // whose Del sets are larger).
            let region = match mmv_constraints::simplify(&region) {
                mmv_constraints::Simplified::Constraint(c) => c,
                mmv_constraints::Simplified::Unsat => continue,
            };
            del.push(ConstrainedAtom {
                pred: atom.pred.clone(),
                args: atom.args.clone(),
                constraint: region,
            });
        }
    }
    stats.del_atoms = del.len();
    if del.is_empty() {
        return Ok(stats);
    }

    // ---- Step 1: unfold P_OUT --------------------------------------------
    let mut pout: Vec<ConstrainedAtom> = Vec::new();
    let mut seen: FxHashSet<ConstrainedAtom> = FxHashSet::default();
    for d in &del {
        seen.insert(canonicalize(d));
        pout.push(d.clone());
    }
    let mut delta: Vec<ConstrainedAtom> = del.clone();
    let mut combos: Vec<EntryId> = Vec::new();
    let mut rounds = 0usize;
    while !delta.is_empty() {
        rounds += 1;
        if rounds > config.max_iterations {
            return Err(DredError::Budget(FixpointError::IterationBudget {
                iterations: rounds,
            }));
        }
        let mut next: Vec<ConstrainedAtom> = Vec::new();
        for (_, clause) in db.clauses() {
            let n = clause.body.len();
            if n == 0 {
                continue;
            }
            // Exactly one body position from the delta, the rest from M
            // (probed through the view's constant-argument index).
            for dpos in 0..n {
                for dm in delta.iter().filter(|a| a.pred == clause.body[dpos].pred) {
                    combos.clear();
                    collect_combos(
                        view,
                        &clause.body,
                        dpos,
                        &[],
                        &DeltaSource::Atom(dm),
                        None,
                        &mut jstats,
                        &mut combos,
                    );
                    for chunk in combos.chunks_exact(n) {
                        let derived = {
                            let children: Vec<&ConstrainedAtom> = chunk
                                .iter()
                                .map(|&id| {
                                    if id == ATOM_SLOT {
                                        dm
                                    } else {
                                        &view.entry(id).atom
                                    }
                                })
                                .collect();
                            derive(clause, &children, gen)
                        };
                        if let Some(derived) = derived {
                            stats.solver_calls += 1;
                            if satisfiable_with(&derived.atom.constraint, resolver, &config.solver)
                                != Truth::Unsat
                            {
                                let canon = canonicalize(&derived.atom);
                                if seen.insert(canon) {
                                    next.push(derived.atom);
                                }
                            }
                        }
                    }
                }
            }
        }
        pout.extend(next.iter().cloned());
        if pout.len() > config.max_entries {
            return Err(DredError::Budget(FixpointError::EntryBudget {
                entries: pout.len(),
            }));
        }
        delta = next;
    }
    stats.pout_atoms = pout.len();

    // ---- Step 2: over-delete to M' ----------------------------------------
    let mut pout_by_pred: FxHashMap<Arc<str>, Vec<ConstrainedAtom>> = FxHashMap::default();
    for p in &pout {
        pout_by_pred
            .entry(p.pred.clone())
            .or_default()
            .push(p.clone());
    }
    let mut touched: Vec<EntryId> = Vec::new();
    for (pred, pouts) in &pout_by_pred {
        for id in view.entries_for_pred(pred).to_vec() {
            let (constraint, changed) = {
                let atom = &view.entry(id).atom;
                let mut constraint = atom.constraint.clone();
                let mut changed = false;
                for p in pouts {
                    if p.args.len() != atom.args.len() {
                        continue;
                    }
                    let ppsi = p.constraint_at(&atom.args, gen).expect("arity checked");
                    stats.solver_calls += 1;
                    if satisfiable_with(
                        &constraint.clone().and(ppsi.clone()),
                        resolver,
                        &config.solver,
                    ) == Truth::Unsat
                    {
                        continue;
                    }
                    // Simplify after *each* conjunct, not once at the
                    // end: the next region's solvability test (and, in
                    // a batch, every later region's) runs against this
                    // constraint, so letting raw not() chains pile up
                    // makes those solver calls quadratically slower.
                    constraint =
                        match mmv_constraints::simplify(&constraint.and_lit(Lit::Not(ppsi))) {
                            mmv_constraints::Simplified::Constraint(c) => c,
                            mmv_constraints::Simplified::Unsat => {
                                Constraint::lit(Lit::Not(Constraint::truth()))
                            }
                        };
                    changed = true;
                }
                (constraint, changed)
            };
            if changed {
                view.replace_constraint(id, constraint);
                touched.push(id);
                stats.weakened += 1;
            }
        }
    }

    // ---- Step 3: rederive within the P_OUT regions over P' ----------------
    // From here on the region map is only read (shared with the
    // rederivation pool tasks when parallelism is on).
    let pout_by_pred = Arc::new(pout_by_pred);
    let pprime = rewrite_for_deletion_gated(db, &del, gen, resolver, config, &mut stats);
    let mut delta_ids: Vec<EntryId> = view.live_entries().map(|(id, _)| id).collect();
    // Constrained facts (empty-body clauses) of P' can themselves restore
    // deleted regions — e.g. Example 4's independent `A(X) <- X >= 3`.
    for (_, clause) in pprime.clauses() {
        if !clause.body.is_empty() {
            continue;
        }
        let Some(regions) = pout_by_pred.get(&clause.head_pred) else {
            continue;
        };
        let Some(derived) = derive(clause, &[], gen) else {
            continue;
        };
        let mut overlaps = false;
        for p in regions {
            if p.args.len() != derived.atom.args.len() {
                continue;
            }
            let ppsi = p
                .constraint_at(&derived.atom.args, gen)
                .expect("arity checked");
            stats.solver_calls += 1;
            if satisfiable_with(
                &derived.atom.constraint.clone().and(ppsi),
                resolver,
                &config.solver,
            ) != Truth::Unsat
            {
                overlaps = true;
                break;
            }
        }
        if !overlaps {
            continue;
        }
        stats.solver_calls += 1;
        if satisfiable_with(&derived.atom.constraint, resolver, &config.solver) != Truth::Unsat {
            if let Some(id) = view.insert(derived.atom, None, vec![]) {
                delta_ids.push(id);
                stats.rederived += 1;
            }
        }
    }
    let mut round_state = RoundState::new();
    let mut plan: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let parallel = config.parallel.as_ref().filter(|p| p.pool.threads() > 1);
    while !delta_ids.is_empty() {
        rounds += 1;
        if rounds > config.max_iterations {
            return Err(DredError::Budget(FixpointError::IterationBudget {
                iterations: rounds,
            }));
        }
        let scope = round_state.begin(view, &delta_ids);
        let delta_by_pred = group_by_pred(view, &delta_ids);
        let mut next_ids: Vec<EntryId> = Vec::new();
        if let Some(par) = parallel {
            rederive_round_parallel(
                par,
                &pprime,
                &pout_by_pred,
                view,
                gen,
                &scope,
                &delta_by_pred,
                config,
                &mut stats,
                &mut jstats,
                &mut next_ids,
                &mut plan,
            )?;
            delta_ids = next_ids;
            continue;
        }
        for (_, clause) in pprime.clauses() {
            // Only derivations that might restore a deleted region matter.
            let Some(regions) = pout_by_pred.get(&clause.head_pred) else {
                continue;
            };
            let n = clause.body.len();
            if n == 0 {
                continue;
            }
            delta_plan(&clause.body, &delta_by_pred, &mut plan);
            for (k, &dpos) in plan.iter().enumerate() {
                let dlist = delta_by_pred
                    .get(&clause.body[dpos].pred)
                    .expect("planned positions carry delta");
                combos.clear();
                collect_combos(
                    view,
                    &clause.body,
                    dpos,
                    &plan[..k],
                    &DeltaSource::Entries(dlist),
                    Some(&scope),
                    &mut jstats,
                    &mut combos,
                );
                for chunk in combos.chunks_exact(n) {
                    let derived = {
                        let children: Vec<&ConstrainedAtom> =
                            chunk.iter().map(|&id| &view.entry(id).atom).collect();
                        derive(clause, &children, gen)
                    };
                    let Some(derived) = derived else {
                        continue;
                    };
                    // Keep only derivations overlapping some deleted
                    // region (P''-style pruning), and only solvable ones.
                    let mut overlaps = false;
                    for p in regions {
                        if p.args.len() != derived.atom.args.len() {
                            continue;
                        }
                        let ppsi = p
                            .constraint_at(&derived.atom.args, gen)
                            .expect("arity checked");
                        stats.solver_calls += 1;
                        if satisfiable_with(
                            &derived.atom.constraint.clone().and(ppsi),
                            resolver,
                            &config.solver,
                        ) != Truth::Unsat
                        {
                            overlaps = true;
                            break;
                        }
                    }
                    if !overlaps {
                        continue;
                    }
                    stats.solver_calls += 1;
                    if satisfiable_with(&derived.atom.constraint, resolver, &config.solver)
                        != Truth::Unsat
                    {
                        if let Some(id) = view.insert(derived.atom, None, vec![]) {
                            next_ids.push(id);
                            stats.rederived += 1;
                            if view.len() > config.max_entries {
                                return Err(DredError::Budget(FixpointError::EntryBudget {
                                    entries: view.len(),
                                }));
                            }
                        }
                    }
                }
            }
        }
        delta_ids = next_ids;
    }

    // ---- Hygiene: drop weakened entries that became unsolvable ------------
    for id in touched {
        if !view.is_live(id) {
            continue;
        }
        let c = view.entry(id).atom.constraint.clone();
        stats.solver_calls += 1;
        if satisfiable_with(&c, resolver, &config.solver) == Truth::Unsat {
            view.remove(id);
            stats.removed += 1;
        }
    }
    stats.index_probes = jstats.index_probes;
    stats.candidates_scanned = jstats.candidates_scanned;
    Ok(stats)
}

/// What one rederivation pool task hands back: the atoms that survived
/// the region-overlap and solvability gates (in enumeration order), its
/// private counters, and its variable generator's high mark.
struct RederiveTaskOutput {
    atoms: Vec<ConstrainedAtom>,
    solver_calls: usize,
    jstats: FixpointStats,
    gen_high: u32,
}

/// One parallel rederivation round of Extended DRed — the same frozen
/// decomposition as `tp::round_parallel` (see there for the
/// determinism argument), specialized to the rederivation frontier:
/// one pool task per `(P' clause with a deleted region,
/// delta-position)` split, each running the candidate-local
/// region-overlap and solvability checks itself, merged back in
/// submission order. Rederivation rounds only insert (the
/// over-deletion's `replace_constraint` rewrites all happen before the
/// frontier starts), so the frozen clone enumerates exactly what the
/// live view would.
#[allow(clippy::too_many_arguments)]
fn rederive_round_parallel(
    par: &ParallelFixpoint,
    pprime: &ConstrainedDatabase,
    pout_by_pred: &Arc<FxHashMap<Arc<str>, Vec<ConstrainedAtom>>>,
    view: &mut MaterializedView,
    gen: &mut VarGen,
    scope: &RoundScope,
    delta_by_pred: &FxHashMap<Arc<str>, Vec<EntryId>>,
    config: &FixpointConfig,
    stats: &mut ExtDredStats,
    jstats: &mut FixpointStats,
    next_ids: &mut Vec<EntryId>,
    plan: &mut Vec<usize>,
) -> Result<(), DredError> {
    let mut splits: Vec<(&Clause, usize, Vec<usize>)> = Vec::new();
    for (_, clause) in pprime.clauses() {
        if clause.body.is_empty() || !pout_by_pred.contains_key(&clause.head_pred) {
            continue;
        }
        delta_plan(&clause.body, delta_by_pred, plan);
        for (k, &dpos) in plan.iter().enumerate() {
            splits.push((clause, dpos, plan[..k].to_vec()));
        }
    }
    let frozen = Arc::new(view.clone());
    let base_watermark = gen.watermark();
    let solver = Arc::new(config.solver.clone());
    let tasks: Vec<_> = splits
        .into_iter()
        .map(|(clause, dpos, older)| {
            let frozen = Arc::clone(&frozen);
            let scope = scope.clone();
            let clause = clause.clone();
            let dlist = delta_by_pred
                .get(&clause.body[dpos].pred)
                .expect("planned positions carry delta")
                .clone();
            let regions = Arc::clone(pout_by_pred);
            let resolver = Arc::clone(&par.resolver);
            let solver = Arc::clone(&solver);
            move || {
                let mut jstats = FixpointStats::default();
                let mut solver_calls = 0usize;
                let mut gen = VarGen::starting_at(base_watermark);
                let mut combos: Vec<EntryId> = Vec::new();
                collect_combos(
                    &frozen,
                    &clause.body,
                    dpos,
                    &older,
                    &DeltaSource::Entries(&dlist),
                    Some(&scope),
                    &mut jstats,
                    &mut combos,
                );
                let n = clause.body.len();
                let regions = regions
                    .get(&clause.head_pred)
                    .expect("splits are gated on a deleted region");
                let mut atoms = Vec::new();
                for chunk in combos.chunks_exact(n) {
                    let derived = {
                        let children: Vec<&ConstrainedAtom> =
                            chunk.iter().map(|&id| &frozen.entry(id).atom).collect();
                        derive(&clause, &children, &mut gen)
                    };
                    let Some(derived) = derived else {
                        continue;
                    };
                    let mut overlaps = false;
                    for p in regions {
                        if p.args.len() != derived.atom.args.len() {
                            continue;
                        }
                        let ppsi = p
                            .constraint_at(&derived.atom.args, &mut gen)
                            .expect("arity checked");
                        solver_calls += 1;
                        if satisfiable_with(
                            &derived.atom.constraint.clone().and(ppsi),
                            resolver.as_ref(),
                            &solver,
                        ) != Truth::Unsat
                        {
                            overlaps = true;
                            break;
                        }
                    }
                    if !overlaps {
                        continue;
                    }
                    solver_calls += 1;
                    if satisfiable_with(&derived.atom.constraint, resolver.as_ref(), &solver)
                        != Truth::Unsat
                    {
                        atoms.push(derived.atom);
                    }
                }
                RederiveTaskOutput {
                    atoms,
                    solver_calls,
                    jstats,
                    gen_high: gen.watermark(),
                }
            }
        })
        .collect();
    let results = par.pool.run(tasks);
    let mut outputs = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(o) => outputs.push(o),
            Err(payload) => {
                return Err(DredError::Budget(FixpointError::WorkerPanic {
                    message: crate::pool::panic_message(payload.as_ref()),
                }))
            }
        }
    }
    // Deterministic merge in submission order; the plain view's own
    // dedup drops cross-split duplicates exactly as it does for the
    // sequential round's inserts.
    let mut gen_high = base_watermark;
    for out in outputs {
        stats.solver_calls += out.solver_calls;
        jstats.absorb(&out.jstats);
        gen_high = gen_high.max(out.gen_high);
        for atom in out.atoms {
            if let Some(id) = view.insert(atom, None, vec![]) {
                next_ids.push(id);
                stats.rederived += 1;
                if view.len() > config.max_entries {
                    gen.reserve_below(gen_high);
                    return Err(DredError::Budget(FixpointError::EntryBudget {
                        entries: view.len(),
                    }));
                }
            }
        }
    }
    gen.reserve_below(gen_high);
    Ok(())
}

/// The paper's clause rewrite (4): every clause whose head predicate is
/// being deleted from carries `not(Del-region)` tied to its head
/// arguments; all other clauses pass through unchanged. The least model
/// of the result is the *declarative semantics* of the deletion
/// (Theorems 1 and 2 compare the algorithms against it).
pub fn rewrite_for_deletion(
    db: &ConstrainedDatabase,
    del: &[ConstrainedAtom],
) -> ConstrainedDatabase {
    let mut gen = db.fresh_gen();
    let mut out = ConstrainedDatabase::new();
    for (cid, clause) in db.clauses() {
        let mut c = clause.clone();
        for d in del {
            if d.pred != clause.head_pred || d.args.len() != clause.head_args.len() {
                continue;
            }
            let dpsi = d
                .constraint_at(&c.head_args, &mut gen)
                .expect("arity checked");
            c = Clause::new(
                &c.head_pred,
                c.head_args.clone(),
                c.constraint.and_lit(Lit::Not(dpsi)),
                c.body.clone(),
            );
        }
        out.push_numbered(cid, c);
    }
    out
}

/// [`rewrite_for_deletion`] with a redundancy gate: a `not(Del-region)`
/// is conjoined onto a clause only if the region *overlaps* the
/// clause's own constraint — excluding a disjoint region excludes
/// nothing (the same gate Algorithm 3 applies when building `Add`).
///
/// The blind rewrite is the declarative spec and stays as the oracle;
/// this one keeps the executable `P'` small. The distinction is what
/// makes *batched* deletion viable: a batch's `Del` holds every
/// request's regions, and conjoining all of them onto every clause of a
/// hot predicate makes each rederivation solver call case-split over a
/// product of `not()` blocks — cost exponential in the batch size.
/// Gated, each clause keeps only the regions it can actually lose,
/// which is what the equivalent sequence of single-atom runs would have
/// confronted one at a time.
fn rewrite_for_deletion_gated(
    db: &ConstrainedDatabase,
    del: &[ConstrainedAtom],
    gen: &mut mmv_constraints::VarGen,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
    stats: &mut ExtDredStats,
) -> ConstrainedDatabase {
    let mut out = ConstrainedDatabase::new();
    for (cid, clause) in db.clauses() {
        let mut c = clause.clone();
        for d in del {
            if d.pred != clause.head_pred || d.args.len() != clause.head_args.len() {
                continue;
            }
            let dpsi = d.constraint_at(&c.head_args, gen).expect("arity checked");
            // Every derivation through the clause satisfies the clause
            // constraint, so a region disjoint from it can never be
            // produced — the not() would only bloat P'.
            stats.solver_calls += 1;
            if satisfiable_with(
                &c.constraint.clone().and(dpsi.clone()),
                resolver,
                &config.solver,
            ) == Truth::Unsat
            {
                continue;
            }
            c = Clause::new(
                &c.head_pred,
                c.head_args.clone(),
                c.constraint.and_lit(Lit::Not(dpsi)),
                c.body.clone(),
            );
        }
        out.push_numbered(cid, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::BodyAtom;
    use crate::tp::{fixpoint, Operator};
    use mmv_constraints::{CmpOp, NoDomains, SolverConfig, Term, Value, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The Examples 4/5 database (>= reading; see delete_stdel.rs).
    fn example4_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    fn build_plain(db: &ConstrainedDatabase) -> MaterializedView {
        fixpoint(
            db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn paper_example_4_extended_dred() {
        // Delete B(X) <- X = 6. P_OUT = {B@6, A@6, C@6}; A keeps 6 via
        // the independent clause-0 fact (rederivation), C keeps 6 through
        // the rederived A.
        let db = example4_db();
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(6)));
        let stats = dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.del_atoms, 1);
        // Overestimate covers B, A-via-B, C-via-A (Del + 2 unfolded).
        assert!(stats.pout_atoms >= 3, "pout = {}", stats.pout_atoms);
        let cfg = SolverConfig::default();
        // B lost 6.
        assert!(view
            .query("B", &[Some(Value::int(6))], &NoDomains, &cfg)
            .unwrap()
            .is_empty());
        // A keeps 6 (independent proof, exactly the paper's point).
        assert_eq!(
            view.query("A", &[Some(Value::int(6))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
        // C keeps 6 through A.
        assert_eq!(
            view.query("C", &[Some(Value::int(6))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
        // Untouched instances intact.
        assert_eq!(
            view.query("B", &[Some(Value::int(7))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn dred_on_ground_diamond() {
        // Ground diamond: s -> {l, r} -> t; path facts; deleting one
        // edge keeps reach(t) via the other branch.
        let v0 = Term::var(Var(0));
        let v1 = Term::var(Var(1));
        let v2 = Term::var(Var(2));
        let edge = |a: &str, b: &str| {
            Clause::fact(
                "edge",
                vec![Term::str(a), Term::str(b)],
                Constraint::truth(),
            )
        };
        let db = ConstrainedDatabase::from_clauses(vec![
            edge("s", "l"),
            edge("s", "r"),
            edge("l", "t"),
            edge("r", "t"),
            Clause::new(
                "path2",
                vec![v0.clone(), v1.clone()],
                Constraint::truth(),
                vec![
                    BodyAtom::new("edge", vec![v0.clone(), v2.clone()]),
                    BodyAtom::new("edge", vec![v2.clone(), v1.clone()]),
                ],
            ),
        ]);
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::fact("edge", vec![Value::str("s"), Value::str("l")]);
        dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        // path2(s, t) survives via r.
        assert_eq!(
            view.query(
                "path2",
                &[Some(Value::str("s")), Some(Value::str("t"))],
                &NoDomains,
                &cfg
            )
            .unwrap()
            .len(),
            1
        );
        // edge(s, l) is gone.
        assert!(view
            .query(
                "edge",
                &[Some(Value::str("s")), Some(Value::str("l"))],
                &NoDomains,
                &cfg
            )
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dred_matches_declarative_oracle() {
        // [result] must equal [T_{P'} ↑ ω (∅)] (Theorem 1), checked on a
        // finite-instance program.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(8),
                )),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(5)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(10),
                )),
            ),
        ]);
        let mut view = build_plain(&db);
        let deletion = ConstrainedAtom::new(
            "A",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(6)),
        );
        // Build Del for the oracle the same way the algorithm does.
        let mut oracle_del: Vec<ConstrainedAtom> = Vec::new();
        for id in view.entries_for_pred("A").to_vec() {
            let atom = view.entry(id).atom.clone();
            let dpsi = deletion
                .constraint_at(&atom.args, view.var_gen_mut())
                .unwrap();
            oracle_del.push(ConstrainedAtom {
                pred: atom.pred.clone(),
                args: atom.args.clone(),
                constraint: atom.constraint.clone().and(dpsi),
            });
        }
        let pprime = rewrite_for_deletion(&db, &oracle_del);
        let (oracle_view, _) = fixpoint(
            &pprime,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();

        dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        assert_eq!(
            view.instances(&NoDomains, &cfg).unwrap(),
            oracle_view.instances(&NoDomains, &cfg).unwrap()
        );
    }

    #[test]
    fn needs_plain_view() {
        let db = example4_db();
        let mut view = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0;
        let deletion = ConstrainedAtom::fact("B", vec![Value::int(6)]);
        assert_eq!(
            dred_delete(
                &db,
                &mut view,
                &deletion,
                &NoDomains,
                &FixpointConfig::default()
            ),
            Err(DredError::NeedsPlainView)
        );
    }

    #[test]
    fn noop_deletion_leaves_view_unchanged() {
        let db = example4_db();
        let mut view = build_plain(&db);
        let before: Vec<String> = view
            .live_entries()
            .map(|(_, e)| canonicalize(&e.atom).to_string())
            .collect();
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(2)));
        let stats = dred_delete(
            &db,
            &mut view,
            &deletion,
            &NoDomains,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.del_atoms, 0);
        let after: Vec<String> = view
            .live_entries()
            .map(|(_, e)| canonicalize(&e.atom).to_string())
            .collect();
        assert_eq!(before, after);
    }
}
