//! Constrained atoms `A(X⃗) ← φ` and their instance semantics `[·]`
//! (paper §2.3).

use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::solver::{solutions_with, EnumResult};
use mmv_constraints::{
    Constraint, DomainResolver, Lit, SolverConfig, Subst, Term, Value, Var, VarGen,
};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A constrained atom: predicate, argument terms, and a constraint over
/// their variables. The paper writes `A(X⃗) ← φ`; arguments are usually
/// variables but constants are permitted (ground facts).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstrainedAtom {
    /// Predicate name.
    pub pred: Arc<str>,
    /// Argument terms.
    pub args: Vec<Term>,
    /// The attached constraint φ.
    pub constraint: Constraint,
}

/// The result of materializing `[A(X⃗) ← φ]` — the set of ground argument
/// tuples that are solutions of φ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instances {
    /// The exact instance set.
    Exact(BTreeSet<Vec<Value>>),
    /// Enumeration exceeded the product budget.
    Overflow,
    /// The instance set is not finitely enumerable.
    Unknown,
}

impl Instances {
    /// The tuples, if exact.
    pub fn exact(&self) -> Option<&BTreeSet<Vec<Value>>> {
        match self {
            Instances::Exact(s) => Some(s),
            _ => None,
        }
    }
}

impl ConstrainedAtom {
    /// Builds a constrained atom.
    pub fn new(pred: &str, args: Vec<Term>, constraint: Constraint) -> Self {
        ConstrainedAtom {
            pred: Arc::from(pred),
            args,
            constraint,
        }
    }

    /// A ground fact as a constrained atom with the `true` constraint.
    pub fn fact(pred: &str, args: Vec<Value>) -> Self {
        ConstrainedAtom {
            pred: Arc::from(pred),
            args: args.into_iter().map(Term::Const).collect(),
            constraint: Constraint::truth(),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Free variables of the atom (arguments first, then constraint),
    /// deduplicated in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.args {
            t.collect_vars(&mut out);
        }
        for l in &self.constraint.lits {
            l.collect_vars(&mut out);
        }
        let mut seen = mmv_constraints::fxhash::FxHashSet::default();
        out.retain(|v| seen.insert(*v));
        out
    }

    /// Renames every variable fresh (standardizing apart), extending `map`.
    pub fn rename_into(&self, map: &mut FxHashMap<Var, Var>, gen: &mut VarGen) -> Self {
        ConstrainedAtom {
            pred: self.pred.clone(),
            args: self.args.iter().map(|t| t.rename_into(map, gen)).collect(),
            constraint: self.constraint.rename_into(map, gen),
        }
    }

    /// Standardizes apart with a private mapping.
    pub fn rename(&self, gen: &mut VarGen) -> Self {
        let mut map = FxHashMap::default();
        self.rename_into(&mut map, gen)
    }

    /// Applies a substitution to arguments and constraint.
    pub fn substitute(&self, s: &Subst) -> Self {
        ConstrainedAtom {
            pred: self.pred.clone(),
            args: self.args.iter().map(|t| t.substitute(s)).collect(),
            constraint: self.constraint.substitute(s),
        }
    }

    /// The instance semantics `[A(X⃗) ← φ]`: the set of argument tuples
    /// obtained from solutions of φ, evaluated against `resolver`'s
    /// *current* state.
    pub fn instances(&self, resolver: &dyn DomainResolver, config: &SolverConfig) -> Instances {
        // Reduce to variable-tuple enumeration: alias each argument term
        // to a fresh variable.
        let mut gen = VarGen::default();
        for v in self.free_vars() {
            gen.reserve_below(v.0 + 1);
        }
        let mut c = self.constraint.clone();
        let mut vars = Vec::with_capacity(self.args.len());
        for t in &self.args {
            match t {
                Term::Var(v) if !vars.contains(v) => vars.push(*v),
                _ => {
                    let f = gen.fresh();
                    c = c.and_lit(Lit::Eq(Term::Var(f), t.clone()));
                    vars.push(f);
                }
            }
        }
        match solutions_with(&c, &vars, resolver, config) {
            EnumResult::Exact(s) => Instances::Exact(s),
            EnumResult::Overflow => Instances::Overflow,
            EnumResult::Unknown => Instances::Unknown,
        }
    }

    /// Instantiates this atom's constraint *at* the given argument terms:
    /// returns `ψσ ∧ extras`, where σ maps each argument variable of the
    /// (standardized-apart) atom to the corresponding target term,
    /// non-variable or repeated arguments contribute equality literals,
    /// and auxiliary variables stay fresh.
    ///
    /// This is the tying operation the maintenance algorithms use to
    /// express "this atom's region, over that entry's arguments" — e.g.
    /// StDel's `not(ψ_j)` tied to the parent's `children_args`, or the
    /// `Del`-set regions `ψ ∧ (X⃗ = Y⃗) ∧ φ`. Substituting (rather than
    /// conjoining fresh-variable equalities) is essential under the
    /// negation: `not(ψσ)` ranges over the caller's variables, whereas
    /// `not(ψ ∧ X⃗=Y⃗)` with fresh `Y⃗` would be satisfied by picking the
    /// fresh variables differently.
    ///
    /// `None` on arity mismatch.
    pub fn constraint_at(&self, targets: &[Term], gen: &mut VarGen) -> Option<Constraint> {
        if targets.len() != self.args.len() {
            return None;
        }
        let renamed = self.rename(gen);
        let mut subst = Subst::new();
        let mut extras: Vec<Lit> = Vec::new();
        for (arg, target) in renamed.args.iter().zip(targets) {
            match arg {
                Term::Var(v) => match subst.get(*v) {
                    Some(prev) => extras.push(Lit::Eq(target.clone(), prev.clone())),
                    None => subst.bind(*v, target.clone()),
                },
                other => extras.push(Lit::Eq(other.clone(), target.clone())),
            }
        }
        let mut c = renamed.constraint.clone();
        c.lits.extend(extras);
        Some(c.substitute(&subst))
    }

    /// Whether the ground tuple `args` is an instance of this atom.
    pub fn covers(
        &self,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Option<bool> {
        if args.len() != self.args.len() {
            return Some(false);
        }
        let mut c = self.constraint.clone();
        for (t, v) in self.args.iter().zip(args) {
            c = c.and_lit(Lit::Eq(t.clone(), Term::Const(v.clone())));
        }
        match mmv_constraints::satisfiable_with(&c, resolver, config) {
            mmv_constraints::Truth::Sat => Some(true),
            mmv_constraints::Truth::Unsat => Some(false),
            mmv_constraints::Truth::Unknown => None,
        }
    }
}

impl fmt::Display for ConstrainedAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if !self.constraint.is_truth() {
            write!(f, " <- {}", self.constraint)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, NoDomains};

    fn x() -> Term {
        Term::var(Var(0))
    }

    #[test]
    fn instance_semantics_of_interval_atom() {
        // A(X) <- 1 <= X <= 3
        let a = ConstrainedAtom::new(
            "a",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(3),
            )),
        );
        let inst = a.instances(&NoDomains, &SolverConfig::default());
        let s = inst.exact().unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.contains(&vec![Value::int(2)]));
    }

    #[test]
    fn ground_fact_instances() {
        let a = ConstrainedAtom::fact("edge", vec![Value::str("a"), Value::str("b")]);
        let inst = a.instances(&NoDomains, &SolverConfig::default());
        let s = inst.exact().unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.contains(&vec![Value::str("a"), Value::str("b")]));
    }

    #[test]
    fn repeated_variable_arguments() {
        // p(X, X) <- X = 1..2 : instances {(1,1), (2,2)}.
        let a = ConstrainedAtom::new(
            "p",
            vec![x(), x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(2),
            )),
        );
        let inst = a.instances(&NoDomains, &SolverConfig::default());
        let s = inst.exact().unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&vec![Value::int(1), Value::int(1)]));
        assert!(!s.contains(&vec![Value::int(1), Value::int(2)]));
    }

    #[test]
    fn unsat_constraint_has_no_instances() {
        let a = ConstrainedAtom::new(
            "p",
            vec![x()],
            Constraint::eq(x(), Term::int(1)).and(Constraint::neq(x(), Term::int(1))),
        );
        let inst = a.instances(&NoDomains, &SolverConfig::default());
        assert!(inst.exact().unwrap().is_empty());
    }

    #[test]
    fn unbounded_is_unknown() {
        let a = ConstrainedAtom::new("p", vec![x()], Constraint::truth());
        assert_eq!(
            a.instances(&NoDomains, &SolverConfig::default()),
            Instances::Unknown
        );
    }

    #[test]
    fn covers_checks_membership() {
        let a = ConstrainedAtom::new(
            "p",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)),
        );
        let cfg = SolverConfig::default();
        assert_eq!(a.covers(&[Value::int(3)], &NoDomains, &cfg), Some(true));
        assert_eq!(a.covers(&[Value::int(9)], &NoDomains, &cfg), Some(false));
        assert_eq!(
            a.covers(&[Value::int(1), Value::int(2)], &NoDomains, &cfg),
            Some(false)
        );
    }

    #[test]
    fn rename_keeps_structure() {
        let a = ConstrainedAtom::new(
            "p",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)),
        );
        let mut gen = VarGen::starting_at(50);
        let b = a.rename(&mut gen);
        assert_eq!(b.pred, a.pred);
        assert_eq!(b.args, vec![Term::var(Var(50))]);
        assert_eq!(b.to_string(), "p(X50) <- X50 <= 5");
    }

    #[test]
    fn display_fact_without_constraint() {
        let a = ConstrainedAtom::fact("e", vec![Value::int(1)]);
        assert_eq!(a.to_string(), "e(1)");
    }

    #[test]
    fn constraint_at_substitutes_arg_vars() {
        // B(X) <- X = 6 tied at target [Y7] gives Y7 = 6.
        let a = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(6)));
        let mut gen = VarGen::starting_at(100);
        let c = a.constraint_at(&[Term::var(Var(7))], &mut gen).unwrap();
        assert_eq!(c, Constraint::eq(Term::var(Var(7)), Term::int(6)));
    }

    #[test]
    fn constraint_at_constants_fold() {
        // P(X, Y) <- X = "c" & Y = "d" tied at ("c", "d") gives a ground,
        // trivially true conjunction "c"="c" & "d"="d".
        let y = Term::var(Var(1));
        let a = ConstrainedAtom::new(
            "P",
            vec![x(), y.clone()],
            Constraint::eq(x(), Term::str("c")).and(Constraint::eq(y, Term::str("d"))),
        );
        let mut gen = VarGen::starting_at(100);
        let c = a
            .constraint_at(&[Term::str("c"), Term::str("d")], &mut gen)
            .unwrap();
        assert_eq!(
            c,
            Constraint::eq(Term::str("c"), Term::str("c"))
                .and(Constraint::eq(Term::str("d"), Term::str("d")))
        );
        // And the simplifier recognizes it as truth.
        assert_eq!(
            mmv_constraints::simplify(&c),
            mmv_constraints::Simplified::Constraint(Constraint::truth())
        );
    }

    #[test]
    fn constraint_at_repeated_vars_force_equality() {
        // Q(X, X) tied at (s, t) must force s = t.
        let a = ConstrainedAtom::new("Q", vec![x(), x()], Constraint::truth());
        let mut gen = VarGen::starting_at(100);
        let c = a
            .constraint_at(&[Term::str("s"), Term::str("t")], &mut gen)
            .unwrap();
        assert_eq!(c, Constraint::eq(Term::str("t"), Term::str("s")));
    }

    #[test]
    fn constraint_at_keeps_aux_vars_fresh() {
        // R(X) <- X = Z & Z <= 5: the aux var Z is renamed fresh.
        let z = Term::var(Var(9));
        let a = ConstrainedAtom::new(
            "R",
            vec![x()],
            Constraint::eq(x(), z.clone()).and(Constraint::cmp(z, CmpOp::Le, Term::int(5))),
        );
        let mut gen = VarGen::starting_at(100);
        let c = a.constraint_at(&[Term::var(Var(50))], &mut gen).unwrap();
        let vars = c.free_vars();
        assert!(vars.contains(&Var(50)));
        assert!(vars.iter().all(|v| *v == Var(50) || v.0 >= 100));
    }

    #[test]
    fn constraint_at_arity_mismatch_is_none() {
        let a = ConstrainedAtom::new("B", vec![x()], Constraint::truth());
        let mut gen = VarGen::starting_at(100);
        assert!(a.constraint_at(&[], &mut gen).is_none());
    }
}
