//! Persistent, structurally-shared storage primitives for the
//! materialized view.
//!
//! [`MaterializedView`](crate::view::MaterializedView) used to be a bag
//! of owned `Vec`s and hash maps, so *snapshotting* it (the `mmv-service`
//! writer publishes a frozen copy per epoch) deep-cloned every entry —
//! O(view) work to make a 1-entry batch visible. The two structures here
//! make a snapshot a handful of `Arc` bumps instead, while keeping the
//! writer's mutations cheap:
//!
//! * [`SharedVec<T>`] — a paged vector whose page table and pages all
//!   live behind `Arc`s. `clone` is O(1); a mutation copies only the
//!   page it lands on (and the page *table*, once), and only when that
//!   page is still shared with an older clone — classic copy-on-write,
//!   paid once per touched page per epoch.
//! * [`SharedMap<K, V>`] — an insert-only persistent hash trie (a HAMT
//!   over the key's 64-bit hash, 6 bits per level). `clone` is O(1);
//!   `insert` walks O(log n) nodes, un-shares (copies) only those an
//!   older clone still holds, and mutates nodes it owns in place — so
//!   sharing costs nothing between snapshots and a path copy at most
//!   once per touched node per epoch. The view's global dedup indexes
//!   (support → entry, canonical-hash → entries) never delete keys, so
//!   removal is deliberately not offered.
//!
//! Neither structure uses interior mutability or unsafe code: a clone is
//! an independent *value* that merely shares heap nodes, so concurrent
//! readers of old clones are data-race-free by construction (`&self`
//! everywhere), which is what lets `mmv-service` hand `Arc<ViewSnapshot>`
//! handles to reader threads while the writer keeps mutating its own
//! handle.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mmv_constraints::fxhash::FxHasher;

/// log2 of the [`SharedVec`] page size.
const PAGE_BITS: usize = 6;
/// Entries per [`SharedVec`] page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A paged copy-on-write vector: O(1) `clone`, O(page) first-touch
/// mutation cost per epoch, `&self` reads with no synchronization.
///
/// Pages are fixed-size chunks behind `Arc`s; the page table itself is
/// also behind an `Arc`, so cloning shares everything. A mutation
/// un-shares the page table (pointer copies only) and then the touched
/// page (element clones) via `Arc::make_mut`; pages untouched since the
/// last clone stay physically shared. [`SharedVec::copied_pages`] counts
/// how many page copies this handle's mutations actually performed —
/// the "CoW traffic" the service reports per epoch.
#[derive(Clone)]
pub struct SharedVec<T> {
    pages: Arc<Vec<Arc<Vec<T>>>>,
    len: usize,
    copied: u64,
}

impl<T> Default for SharedVec<T> {
    fn default() -> Self {
        SharedVec {
            pages: Arc::new(Vec::new()),
            len: 0,
            copied: 0,
        }
    }
}

impl<T: Clone> SharedVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        SharedVec::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Page copies performed by this handle's mutations (cumulative; a
    /// clone inherits the count, so callers diff across epochs).
    pub fn copied_pages(&self) -> u64 {
        self.copied
    }

    /// The element at `i` (panics if out of bounds, like indexing).
    pub fn get(&self, i: usize) -> &T {
        assert!(
            i < self.len,
            "SharedVec index {i} out of bounds {}",
            self.len
        );
        &self.pages[i >> PAGE_BITS][i & (PAGE_SIZE - 1)]
    }

    /// Appends an element.
    pub fn push(&mut self, v: T) {
        let pages = Arc::make_mut(&mut self.pages);
        if self.len & (PAGE_SIZE - 1) == 0 {
            pages.push(Arc::new(Vec::with_capacity(PAGE_SIZE)));
        }
        let page = pages.last_mut().expect("page just ensured");
        unshare_counted(page, &mut self.copied).push(v);
        self.len += 1;
    }

    /// Replaces the element at `i`.
    pub fn set(&mut self, i: usize, v: T) {
        assert!(
            i < self.len,
            "SharedVec index {i} out of bounds {}",
            self.len
        );
        let pages = Arc::make_mut(&mut self.pages);
        let page = &mut pages[i >> PAGE_BITS];
        unshare_counted(page, &mut self.copied)[i & (PAGE_SIZE - 1)] = v;
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|p| p.iter())
    }
}

/// Un-shares a CoW value for mutation, counting the copy iff one was
/// actually performed. The uniqueness test and the clone are one
/// decision (unlike a `strong_count` check before `Arc::make_mut`,
/// which could observe "shared" while a concurrent reader drops the
/// last other handle and `make_mut` then skips the clone — an
/// overcounted copy).
pub(crate) fn unshare_counted<'a, T: Clone>(arc: &'a mut Arc<T>, copies: &mut u64) -> &'a mut T {
    if Arc::get_mut(arc).is_none() {
        *copies += 1;
        *arc = Arc::new((**arc).clone());
    }
    Arc::get_mut(arc).expect("value just un-shared")
}

impl<T: fmt::Debug> fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.pages.iter().flat_map(|p| p.iter()))
            .finish()
    }
}

/// Branching factor bits per trie level.
const TRIE_BITS: u32 = 6;
/// Mask selecting one level's child index.
const TRIE_MASK: u64 = (1 << TRIE_BITS) - 1;

#[derive(Debug)]
enum Node<K, V> {
    /// An interior node: `bitmap` says which of the 64 child slots are
    /// occupied; `children` holds them densely in slot order.
    Branch {
        bitmap: u64,
        children: Vec<Arc<Node<K, V>>>,
    },
    /// All pairs whose keys share the full 64-bit `hash` (genuine
    /// collisions only — differing hashes always split into a Branch).
    Leaf { hash: u64, pairs: Vec<(K, V)> },
}

/// An insert-only persistent hash map (HAMT): O(1) `clone`, lookups and
/// inserts walk ≤ 11 levels, and an insert copies only the nodes on its
/// path — everything else stays shared with older clones.
#[derive(Clone)]
pub struct SharedMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Default for SharedMap<K, V> {
    fn default() -> Self {
        SharedMap { root: None, len: 0 }
    }
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = FxHasher::default();
    k.hash(&mut h);
    h.finish()
}

fn slot(hash: u64, depth: u32) -> usize {
    ((hash >> (depth * TRIE_BITS)) & TRIE_MASK) as usize
}

impl<K: Hash + Eq + Clone, V: Clone> SharedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SharedMap::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `k`, if present.
    pub fn get(&self, k: &K) -> Option<&V> {
        let hash = hash_key(k);
        let mut node = self.root.as_deref()?;
        let mut depth = 0u32;
        loop {
            match node {
                Node::Leaf { hash: lh, pairs } => {
                    if *lh != hash {
                        return None;
                    }
                    return pairs.iter().find(|(pk, _)| pk == k).map(|(_, v)| v);
                }
                Node::Branch { bitmap, children } => {
                    let s = slot(hash, depth);
                    let bit = 1u64 << s;
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[idx];
                    depth += 1;
                }
            }
        }
    }

    /// Whether `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Inserts `k → v`, returning the previous value if the key was
    /// already present. Nodes still shared with an older clone are
    /// copied on the way down (path copy); nodes this handle already
    /// owns outright are mutated in place — so a burst of inserts
    /// between snapshots (the fixpoint build, a batch's propagation)
    /// pays the structural-sharing tax at most once per touched node.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let hash = hash_key(&k);
        let old = match &mut self.root {
            slot @ None => {
                *slot = Some(Arc::new(Node::Leaf {
                    hash,
                    pairs: vec![(k, v)],
                }));
                None
            }
            Some(root) => insert_rec(root, 0, hash, k, v),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Edits the value for `k` in place, first inserting `default` if
    /// the key is absent. Like [`SharedMap::insert`], only nodes still
    /// shared with an older clone are copied on the way down — in
    /// particular the value itself is *not* cloned when this handle
    /// already owns its leaf, which is what makes accumulating into a
    /// `Vec` value cheap between snapshots.
    pub fn update(&mut self, k: K, default: V, f: impl FnOnce(&mut V)) {
        let hash = hash_key(&k);
        let fresh = match &mut self.root {
            slot @ None => {
                let mut v = default;
                f(&mut v);
                *slot = Some(Arc::new(Node::Leaf {
                    hash,
                    pairs: vec![(k, v)],
                }));
                true
            }
            Some(root) => update_rec(root, 0, hash, k, default, f),
        };
        if fresh {
            self.len += 1;
        }
    }
}

/// Builds the branch chain separating two leaves whose hashes first
/// differ at or below `depth` (they are guaranteed to differ somewhere:
/// equal hashes never reach here).
fn split<K, V>(
    a: Arc<Node<K, V>>,
    ah: u64,
    b: Arc<Node<K, V>>,
    bh: u64,
    depth: u32,
) -> Arc<Node<K, V>> {
    let (sa, sb) = (slot(ah, depth), slot(bh, depth));
    if sa == sb {
        let child = split(a, ah, b, bh, depth + 1);
        return Arc::new(Node::Branch {
            bitmap: 1u64 << sa,
            children: vec![child],
        });
    }
    let (bitmap, children) = if sa < sb {
        ((1u64 << sa) | (1u64 << sb), vec![a, b])
    } else {
        ((1u64 << sa) | (1u64 << sb), vec![b, a])
    };
    Arc::new(Node::Branch { bitmap, children })
}

impl<K: Clone, V: Clone> Node<K, V> {
    /// A one-level copy: leaf buckets are cloned (they are about to be
    /// edited), branch children stay shared `Arc`s.
    fn unshare(&self) -> Self {
        match self {
            Node::Leaf { hash, pairs } => Node::Leaf {
                hash: *hash,
                pairs: pairs.clone(),
            },
            Node::Branch { bitmap, children } => Node::Branch {
                bitmap: *bitmap,
                children: children.clone(),
            },
        }
    }
}

fn insert_rec<K: Hash + Eq + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    k: K,
    v: V,
) -> Option<V> {
    // A leaf with a different hash splits into a branch over both; the
    // old leaf is shared into the new subtree as-is, so no un-sharing.
    if let Node::Leaf { hash: lh, .. } = node.as_ref() {
        if *lh != hash {
            let fresh = Arc::new(Node::Leaf {
                hash,
                pairs: vec![(k, v)],
            });
            let (old_leaf, lh) = (node.clone(), *lh);
            *node = split(old_leaf, lh, fresh, hash, depth);
            return None;
        }
    }
    // Otherwise this node is edited: un-share it first if an older
    // clone still holds it, then mutate in place.
    if Arc::get_mut(node).is_none() {
        *node = Arc::new(node.unshare());
    }
    match Arc::get_mut(node).expect("node just un-shared") {
        Node::Leaf { pairs, .. } => match pairs.iter_mut().find(|(pk, _)| *pk == k) {
            Some(pair) => Some(std::mem::replace(&mut pair.1, v)),
            None => {
                pairs.push((k, v));
                None
            }
        },
        Node::Branch { bitmap, children } => {
            let s = slot(hash, depth);
            let bit = 1u64 << s;
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit == 0 {
                children.insert(
                    idx,
                    Arc::new(Node::Leaf {
                        hash,
                        pairs: vec![(k, v)],
                    }),
                );
                *bitmap |= bit;
                None
            } else {
                insert_rec(&mut children[idx], depth + 1, hash, k, v)
            }
        }
    }
}

/// [`insert_rec`]'s in-place-edit sibling: finds (or creates, from
/// `default`) the value for `k` and applies `f` to it, un-sharing only
/// the path nodes an older clone still holds. Returns whether a fresh
/// key was added.
fn update_rec<K: Hash + Eq + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    k: K,
    default: V,
    f: impl FnOnce(&mut V),
) -> bool {
    if let Node::Leaf { hash: lh, .. } = node.as_ref() {
        if *lh != hash {
            let mut v = default;
            f(&mut v);
            let fresh = Arc::new(Node::Leaf {
                hash,
                pairs: vec![(k, v)],
            });
            let (old_leaf, lh) = (node.clone(), *lh);
            *node = split(old_leaf, lh, fresh, hash, depth);
            return true;
        }
    }
    if Arc::get_mut(node).is_none() {
        *node = Arc::new(node.unshare());
    }
    match Arc::get_mut(node).expect("node just un-shared") {
        Node::Leaf { pairs, .. } => match pairs.iter_mut().find(|(pk, _)| *pk == k) {
            Some(pair) => {
                f(&mut pair.1);
                false
            }
            None => {
                let mut v = default;
                f(&mut v);
                pairs.push((k, v));
                true
            }
        },
        Node::Branch { bitmap, children } => {
            let s = slot(hash, depth);
            let bit = 1u64 << s;
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit == 0 {
                let mut v = default;
                f(&mut v);
                children.insert(
                    idx,
                    Arc::new(Node::Leaf {
                        hash,
                        pairs: vec![(k, v)],
                    }),
                );
                *bitmap |= bit;
                true
            } else {
                update_rec(&mut children[idx], depth + 1, hash, k, default, f)
            }
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for SharedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk<K: fmt::Debug, V: fmt::Debug>(node: &Node<K, V>, m: &mut fmt::DebugMap<'_, '_>) {
            match node {
                Node::Leaf { pairs, .. } => {
                    for (k, v) in pairs {
                        m.entry(k, v);
                    }
                }
                Node::Branch { children, .. } => {
                    for c in children {
                        walk(c, m);
                    }
                }
            }
        }
        let mut m = f.debug_map();
        if let Some(root) = &self.root {
            walk(root, &mut m);
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn shared_vec_push_get_set_iter() {
        let mut v: SharedVec<i32> = SharedVec::new();
        assert!(v.is_empty());
        for i in 0..200 {
            v.push(i);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(*v.get(0), 0);
        assert_eq!(*v.get(199), 199);
        assert_eq!(v.page_count(), 200usize.div_ceil(PAGE_SIZE));
        v.set(5, 500);
        assert_eq!(*v.get(5), 500);
        let collected: Vec<i32> = v.iter().copied().collect();
        assert_eq!(collected.len(), 200);
        assert_eq!(collected[5], 500);
    }

    #[test]
    fn shared_vec_clone_isolates_and_counts_copies() {
        let mut v: SharedVec<i32> = SharedVec::new();
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.copied_pages(), 0, "unshared pushes copy nothing");
        let snapshot = v.clone();
        // Mutations after the clone leave the snapshot untouched...
        v.set(3, -3);
        v.push(100);
        assert_eq!(*snapshot.get(3), 3);
        assert_eq!(snapshot.len(), 100);
        assert_eq!(*v.get(3), -3);
        assert_eq!(v.len(), 101);
        // ...and each touched a shared page exactly once.
        assert_eq!(v.copied_pages(), 2, "set page + tail page");
        // Re-touching the now-unshared pages copies nothing further.
        v.set(3, -4);
        v.push(101);
        assert_eq!(v.copied_pages(), 2);
    }

    #[test]
    fn shared_map_matches_std_hashmap() {
        let mut m: SharedMap<u64, u64> = SharedMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // A keyed pseudo-random walk with plenty of overwrites.
        let mut k = 7u64;
        for i in 0..2000u64 {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = k % 512;
            assert_eq!(m.insert(key, i), reference.insert(key, i), "key {key}");
            assert_eq!(m.len(), reference.len());
        }
        for key in 0..512u64 {
            assert_eq!(m.get(&key), reference.get(&key), "key {key}");
            assert_eq!(m.contains_key(&key), reference.contains_key(&key));
        }
        assert_eq!(m.get(&10_000), None);
    }

    #[test]
    fn shared_map_clone_isolates() {
        let mut m: SharedMap<String, usize> = SharedMap::new();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        let snapshot = m.clone();
        for i in 0..100 {
            m.insert(format!("k{i}"), i + 1000);
        }
        m.insert("fresh".to_string(), 1);
        for i in 0..100 {
            assert_eq!(snapshot.get(&format!("k{i}")), Some(&i));
            assert_eq!(m.get(&format!("k{i}")), Some(&(i + 1000)));
        }
        assert!(!snapshot.contains_key(&"fresh".to_string()));
        assert_eq!(snapshot.len(), 100);
        assert_eq!(m.len(), 101);
    }

    #[test]
    fn shared_map_update_edits_in_place_and_isolates_clones() {
        let mut m: SharedMap<u64, Vec<u32>> = SharedMap::new();
        for i in 0..50u64 {
            m.update(i % 10, Vec::new(), |v| v.push(i as u32));
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.get(&3), Some(&vec![3, 13, 23, 33, 43]));
        let snapshot = m.clone();
        m.update(3, Vec::new(), |v| v.push(999));
        m.update(77, vec![1], |v| v.push(2));
        assert_eq!(snapshot.get(&3), Some(&vec![3, 13, 23, 33, 43]));
        assert_eq!(snapshot.get(&77), None);
        assert_eq!(snapshot.len(), 10);
        assert_eq!(m.get(&3), Some(&vec![3, 13, 23, 33, 43, 999]));
        assert_eq!(m.get(&77), Some(&vec![1, 2]));
        assert_eq!(m.len(), 11);
    }

    /// Keys engineered to collide on full 64-bit hashes exercise the
    /// leaf bucket path.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Colliding(u32);
    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u64(42); // everyone hashes alike
        }
    }

    #[test]
    fn shared_map_handles_full_hash_collisions() {
        let mut m: SharedMap<Colliding, u32> = SharedMap::new();
        for i in 0..20 {
            assert_eq!(m.insert(Colliding(i), i), None);
        }
        assert_eq!(m.len(), 20);
        for i in 0..20 {
            assert_eq!(m.get(&Colliding(i)), Some(&i));
        }
        assert_eq!(m.insert(Colliding(7), 700), Some(7));
        assert_eq!(m.get(&Colliding(7)), Some(&700));
        assert_eq!(m.len(), 20);
    }

    #[test]
    fn debug_renders() {
        let mut v: SharedVec<u8> = SharedVec::new();
        v.push(1);
        let mut m: SharedMap<u8, u8> = SharedMap::new();
        m.insert(1, 2);
        assert_eq!(format!("{v:?}"), "[1]");
        assert_eq!(format!("{m:?}"), "{1: 2}");
    }
}
