//! Persistent, structurally-shared storage primitives for the
//! materialized view.
//!
//! [`MaterializedView`](crate::view::MaterializedView) used to be a bag
//! of owned `Vec`s and hash maps, so *snapshotting* it (the `mmv-service`
//! writer publishes a frozen copy per epoch) deep-cloned every entry —
//! O(view) work to make a 1-entry batch visible. The two structures here
//! make a snapshot a handful of `Arc` bumps instead, while keeping the
//! writer's mutations cheap:
//!
//! * [`SharedVec<T>`] — a paged vector whose page table and pages all
//!   live behind `Arc`s. `clone` is O(1); a mutation copies only the
//!   page it lands on (and the page *table*, once), and only when that
//!   page is still shared with an older clone — classic copy-on-write,
//!   paid once per touched page per epoch.
//! * [`SharedMap<K, V>`] — a persistent hash trie (a HAMT over the
//!   key's 64-bit hash, 6 bits per level). `clone` is O(1); `insert`,
//!   `update` and `remove` walk O(log n) nodes, un-share (copy) only
//!   those an older clone still holds, and mutate nodes the handle owns
//!   in place — so sharing costs nothing between snapshots and a path
//!   copy is paid at most once per touched node per epoch. The view's
//!   global dedup indexes (support → entry, canonical-hash → entries)
//!   are insert-only; the per-predicate discrimination indexes
//!   (`by_const`, the `slots` live-set) additionally delete keys via
//!   [`SharedMap::remove`]. [`SharedMap::copied_keys`] counts the
//!   key/value pairs physically re-cloned by leaf un-shares — the
//!   *key-level* CoW traffic: touching one key of a shared index costs
//!   O(that key's bucket), never O(all keys), and the counter is what
//!   proves it (`share_stats()` aggregates it per view).
//!
//! Neither structure uses interior mutability or unsafe code: a clone is
//! an independent *value* that merely shares heap nodes, so concurrent
//! readers of old clones are data-race-free by construction (`&self`
//! everywhere), which is what lets `mmv-service` hand `Arc<ViewSnapshot>`
//! handles to reader threads while the writer keeps mutating its own
//! handle.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use mmv_constraints::fxhash::FxHasher;

/// log2 of the [`SharedVec`] page size.
const PAGE_BITS: usize = 6;
/// Entries per [`SharedVec`] page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A paged copy-on-write vector: O(1) `clone`, O(page) first-touch
/// mutation cost per epoch, `&self` reads with no synchronization.
///
/// Pages are fixed-size chunks behind `Arc`s; the page table itself is
/// also behind an `Arc`, so cloning shares everything. A mutation
/// un-shares the page table (pointer copies only) and then the touched
/// page (element clones) via `Arc::make_mut`; pages untouched since the
/// last clone stay physically shared. [`SharedVec::copied_pages`] counts
/// how many page copies this handle's mutations actually performed —
/// the "CoW traffic" the service reports per epoch.
#[derive(Clone)]
pub struct SharedVec<T> {
    pages: Arc<Vec<Arc<Vec<T>>>>,
    len: usize,
    copied: u64,
}

impl<T> Default for SharedVec<T> {
    fn default() -> Self {
        SharedVec {
            pages: Arc::new(Vec::new()),
            len: 0,
            copied: 0,
        }
    }
}

impl<T: Clone> SharedVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        SharedVec::default()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages currently allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Page copies performed by this handle's mutations (cumulative; a
    /// clone inherits the count, so callers diff across epochs).
    pub fn copied_pages(&self) -> u64 {
        self.copied
    }

    /// The element at `i` (panics if out of bounds, like indexing).
    pub fn get(&self, i: usize) -> &T {
        assert!(
            i < self.len,
            "SharedVec index {i} out of bounds {}",
            self.len
        );
        &self.pages[i >> PAGE_BITS][i & (PAGE_SIZE - 1)]
    }

    /// Appends an element.
    pub fn push(&mut self, v: T) {
        let pages = Arc::make_mut(&mut self.pages);
        if self.len & (PAGE_SIZE - 1) == 0 {
            pages.push(Arc::new(Vec::with_capacity(PAGE_SIZE)));
        }
        let page = pages.last_mut().expect("page just ensured");
        unshare_counted(page, &mut self.copied).push(v);
        self.len += 1;
    }

    /// Replaces the element at `i`.
    pub fn set(&mut self, i: usize, v: T) {
        assert!(
            i < self.len,
            "SharedVec index {i} out of bounds {}",
            self.len
        );
        let pages = Arc::make_mut(&mut self.pages);
        let page = &mut pages[i >> PAGE_BITS];
        unshare_counted(page, &mut self.copied)[i & (PAGE_SIZE - 1)] = v;
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|p| p.iter())
    }
}

/// Un-shares a CoW value for mutation, counting the copy iff one was
/// actually performed. The uniqueness test and the clone are one
/// decision (unlike a `strong_count` check before `Arc::make_mut`,
/// which could observe "shared" while a concurrent reader drops the
/// last other handle and `make_mut` then skips the clone — an
/// overcounted copy).
pub(crate) fn unshare_counted<'a, T: Clone>(arc: &'a mut Arc<T>, copies: &mut u64) -> &'a mut T {
    if Arc::get_mut(arc).is_none() {
        *copies += 1;
        *arc = Arc::new((**arc).clone());
    }
    Arc::get_mut(arc).expect("value just un-shared")
}

impl<T: fmt::Debug> fmt::Debug for SharedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.pages.iter().flat_map(|p| p.iter()))
            .finish()
    }
}

/// Branching factor bits per trie level.
const TRIE_BITS: u32 = 6;
/// Mask selecting one level's child index.
const TRIE_MASK: u64 = (1 << TRIE_BITS) - 1;

#[derive(Debug)]
enum Node<K, V> {
    /// An interior node: `bitmap` says which of the 64 child slots are
    /// occupied; `children` holds them densely in slot order.
    Branch {
        bitmap: u64,
        children: Vec<Arc<Node<K, V>>>,
    },
    /// All pairs whose keys share the full 64-bit `hash` (genuine
    /// collisions only — differing hashes always split into a Branch).
    Leaf { hash: u64, pairs: Vec<(K, V)> },
}

/// A persistent hash map (HAMT): O(1) `clone`, lookups, inserts and
/// removals walk ≤ 11 levels, and a mutation copies only the nodes on
/// its path — everything else stays shared with older clones.
#[derive(Clone)]
pub struct SharedMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
    /// Key/value pairs physically cloned by leaf un-shares (cumulative;
    /// clones inherit the count, so callers diff across epochs).
    copied: u64,
}

impl<K, V> Default for SharedMap<K, V> {
    fn default() -> Self {
        SharedMap {
            root: None,
            len: 0,
            copied: 0,
        }
    }
}

fn hash_key<K: Hash>(k: &K) -> u64 {
    let mut h = FxHasher::default();
    k.hash(&mut h);
    h.finish()
}

fn slot(hash: u64, depth: u32) -> usize {
    ((hash >> (depth * TRIE_BITS)) & TRIE_MASK) as usize
}

impl<K: Hash + Eq + Clone, V: Clone> SharedMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        SharedMap::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value for `k`, if present.
    pub fn get(&self, k: &K) -> Option<&V> {
        let hash = hash_key(k);
        let mut node = self.root.as_deref()?;
        let mut depth = 0u32;
        loop {
            match node {
                Node::Leaf { hash: lh, pairs } => {
                    if *lh != hash {
                        return None;
                    }
                    return pairs.iter().find(|(pk, _)| pk == k).map(|(_, v)| v);
                }
                Node::Branch { bitmap, children } => {
                    let s = slot(hash, depth);
                    let bit = 1u64 << s;
                    if bitmap & bit == 0 {
                        return None;
                    }
                    let idx = (bitmap & (bit - 1)).count_ones() as usize;
                    node = &children[idx];
                    depth += 1;
                }
            }
        }
    }

    /// Whether `k` is present.
    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Key/value pairs this handle's mutations physically re-cloned
    /// while un-sharing leaf buckets (cumulative; a clone inherits the
    /// count, so callers diff across epochs). This is the *key-level*
    /// copy cost of the structure: mutating one key of a map shared
    /// with an older snapshot bumps this by that key's bucket size
    /// (almost always 1), never by the whole key count.
    pub fn copied_keys(&self) -> u64 {
        self.copied
    }

    /// Inserts `k → v`, returning the previous value if the key was
    /// already present. Nodes still shared with an older clone are
    /// copied on the way down (path copy); nodes this handle already
    /// owns outright are mutated in place — so a burst of inserts
    /// between snapshots (the fixpoint build, a batch's propagation)
    /// pays the structural-sharing tax at most once per touched node.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let hash = hash_key(&k);
        let old = match &mut self.root {
            slot @ None => {
                *slot = Some(Arc::new(Node::Leaf {
                    hash,
                    pairs: vec![(k, v)],
                }));
                None
            }
            Some(root) => insert_rec(root, 0, hash, k, v, &mut self.copied),
        };
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Edits the value for `k` in place, first inserting `default` if
    /// the key is absent. Like [`SharedMap::insert`], only nodes still
    /// shared with an older clone are copied on the way down — in
    /// particular the value itself is *not* cloned when this handle
    /// already owns its leaf, which is what makes accumulating into a
    /// `Vec` value cheap between snapshots.
    pub fn update(&mut self, k: K, default: V, f: impl FnOnce(&mut V)) {
        let hash = hash_key(&k);
        let fresh = match &mut self.root {
            slot @ None => {
                let mut v = default;
                f(&mut v);
                *slot = Some(Arc::new(Node::Leaf {
                    hash,
                    pairs: vec![(k, v)],
                }));
                true
            }
            Some(root) => update_rec(root, 0, hash, k, default, f, &mut self.copied),
        };
        if fresh {
            self.len += 1;
        }
    }

    /// Removes `k`, returning its value if it was present. Like the
    /// other mutations, only path nodes an older clone still holds are
    /// copied; a leaf bucket left empty is unlinked from its branch
    /// (and the branch's slot bit cleared), so lookups never traverse
    /// tombstones.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        // Probe first: a miss must not un-share anything.
        if !self.contains_key(k) {
            return None;
        }
        let hash = hash_key(k);
        let root = self.root.as_mut().expect("key present, so non-empty");
        let (v, now_empty) = remove_rec(root, 0, hash, k, &mut self.copied);
        if now_empty {
            self.root = None;
        }
        self.len -= 1;
        Some(v)
    }
}

/// Builds the branch chain separating two leaves whose hashes first
/// differ at or below `depth` (they are guaranteed to differ somewhere:
/// equal hashes never reach here).
fn split<K, V>(
    a: Arc<Node<K, V>>,
    ah: u64,
    b: Arc<Node<K, V>>,
    bh: u64,
    depth: u32,
) -> Arc<Node<K, V>> {
    let (sa, sb) = (slot(ah, depth), slot(bh, depth));
    if sa == sb {
        let child = split(a, ah, b, bh, depth + 1);
        return Arc::new(Node::Branch {
            bitmap: 1u64 << sa,
            children: vec![child],
        });
    }
    let (bitmap, children) = if sa < sb {
        ((1u64 << sa) | (1u64 << sb), vec![a, b])
    } else {
        ((1u64 << sa) | (1u64 << sb), vec![b, a])
    };
    Arc::new(Node::Branch { bitmap, children })
}

impl<K: Clone, V: Clone> Node<K, V> {
    /// A one-level copy: leaf buckets are cloned (they are about to be
    /// edited), branch children stay shared `Arc`s.
    fn unshare(&self) -> Self {
        match self {
            Node::Leaf { hash, pairs } => Node::Leaf {
                hash: *hash,
                pairs: pairs.clone(),
            },
            Node::Branch { bitmap, children } => Node::Branch {
                bitmap: *bitmap,
                children: children.clone(),
            },
        }
    }
}

/// Un-shares a trie node for mutation, charging `copied` with the
/// key/value pairs cloned when the node is a leaf bucket (branch
/// un-shares copy child `Arc`s, not keys). No-op on nodes this handle
/// already owns — the uniqueness test and the clone are one decision,
/// like [`unshare_counted`].
fn unshare_node<K: Clone, V: Clone>(node: &mut Arc<Node<K, V>>, copied: &mut u64) {
    if Arc::get_mut(node).is_none() {
        if let Node::Leaf { pairs, .. } = node.as_ref() {
            *copied += pairs.len() as u64;
        }
        *node = Arc::new(node.unshare());
    }
}

fn insert_rec<K: Hash + Eq + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    k: K,
    v: V,
    copied: &mut u64,
) -> Option<V> {
    // A leaf with a different hash splits into a branch over both; the
    // old leaf is shared into the new subtree as-is, so no un-sharing.
    if let Node::Leaf { hash: lh, .. } = node.as_ref() {
        if *lh != hash {
            let fresh = Arc::new(Node::Leaf {
                hash,
                pairs: vec![(k, v)],
            });
            let (old_leaf, lh) = (node.clone(), *lh);
            *node = split(old_leaf, lh, fresh, hash, depth);
            return None;
        }
    }
    // Otherwise this node is edited: un-share it first if an older
    // clone still holds it, then mutate in place.
    unshare_node(node, copied);
    match Arc::get_mut(node).expect("node just un-shared") {
        Node::Leaf { pairs, .. } => match pairs.iter_mut().find(|(pk, _)| *pk == k) {
            Some(pair) => Some(std::mem::replace(&mut pair.1, v)),
            None => {
                pairs.push((k, v));
                None
            }
        },
        Node::Branch { bitmap, children } => {
            let s = slot(hash, depth);
            let bit = 1u64 << s;
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit == 0 {
                children.insert(
                    idx,
                    Arc::new(Node::Leaf {
                        hash,
                        pairs: vec![(k, v)],
                    }),
                );
                *bitmap |= bit;
                None
            } else {
                insert_rec(&mut children[idx], depth + 1, hash, k, v, copied)
            }
        }
    }
}

/// [`insert_rec`]'s in-place-edit sibling: finds (or creates, from
/// `default`) the value for `k` and applies `f` to it, un-sharing only
/// the path nodes an older clone still holds. Returns whether a fresh
/// key was added.
fn update_rec<K: Hash + Eq + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    k: K,
    default: V,
    f: impl FnOnce(&mut V),
    copied: &mut u64,
) -> bool {
    if let Node::Leaf { hash: lh, .. } = node.as_ref() {
        if *lh != hash {
            let mut v = default;
            f(&mut v);
            let fresh = Arc::new(Node::Leaf {
                hash,
                pairs: vec![(k, v)],
            });
            let (old_leaf, lh) = (node.clone(), *lh);
            *node = split(old_leaf, lh, fresh, hash, depth);
            return true;
        }
    }
    unshare_node(node, copied);
    match Arc::get_mut(node).expect("node just un-shared") {
        Node::Leaf { pairs, .. } => match pairs.iter_mut().find(|(pk, _)| *pk == k) {
            Some(pair) => {
                f(&mut pair.1);
                false
            }
            None => {
                let mut v = default;
                f(&mut v);
                pairs.push((k, v));
                true
            }
        },
        Node::Branch { bitmap, children } => {
            let s = slot(hash, depth);
            let bit = 1u64 << s;
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit == 0 {
                let mut v = default;
                f(&mut v);
                children.insert(
                    idx,
                    Arc::new(Node::Leaf {
                        hash,
                        pairs: vec![(k, v)],
                    }),
                );
                *bitmap |= bit;
                true
            } else {
                update_rec(&mut children[idx], depth + 1, hash, k, default, f, copied)
            }
        }
    }
}

/// [`insert_rec`]'s removal sibling. Callers have already proven `k` is
/// present, so every node on the path is edited: un-share it (charging
/// leaf-pair copies), remove the pair from its leaf bucket, and unlink
/// emptied children on the way back up (clearing the branch's slot
/// bit). Returns the removed value and whether `node` itself is now
/// empty and should be unlinked by *its* parent.
fn remove_rec<K: Hash + Eq + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    depth: u32,
    hash: u64,
    k: &K,
    copied: &mut u64,
) -> (V, bool) {
    unshare_node(node, copied);
    match Arc::get_mut(node).expect("node just un-shared") {
        Node::Leaf { pairs, .. } => {
            let idx = pairs
                .iter()
                .position(|(pk, _)| pk == k)
                .expect("caller proved the key is present");
            let (_, v) = pairs.remove(idx);
            (v, pairs.is_empty())
        }
        Node::Branch { bitmap, children } => {
            let s = slot(hash, depth);
            let bit = 1u64 << s;
            debug_assert!(*bitmap & bit != 0, "caller proved the key is present");
            let idx = (*bitmap & (bit - 1)).count_ones() as usize;
            let (v, child_empty) = remove_rec(&mut children[idx], depth + 1, hash, k, copied);
            if child_empty {
                children.remove(idx);
                *bitmap &= !bit;
            }
            (v, children.is_empty())
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for SharedMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk<K: fmt::Debug, V: fmt::Debug>(node: &Node<K, V>, m: &mut fmt::DebugMap<'_, '_>) {
            match node {
                Node::Leaf { pairs, .. } => {
                    for (k, v) in pairs {
                        m.entry(k, v);
                    }
                }
                Node::Branch { children, .. } => {
                    for c in children {
                        walk(c, m);
                    }
                }
            }
        }
        let mut m = f.debug_map();
        if let Some(root) = &self.root {
            walk(root, &mut m);
        }
        m.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn shared_vec_push_get_set_iter() {
        let mut v: SharedVec<i32> = SharedVec::new();
        assert!(v.is_empty());
        for i in 0..200 {
            v.push(i);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(*v.get(0), 0);
        assert_eq!(*v.get(199), 199);
        assert_eq!(v.page_count(), 200usize.div_ceil(PAGE_SIZE));
        v.set(5, 500);
        assert_eq!(*v.get(5), 500);
        let collected: Vec<i32> = v.iter().copied().collect();
        assert_eq!(collected.len(), 200);
        assert_eq!(collected[5], 500);
    }

    #[test]
    fn shared_vec_clone_isolates_and_counts_copies() {
        let mut v: SharedVec<i32> = SharedVec::new();
        for i in 0..100 {
            v.push(i);
        }
        assert_eq!(v.copied_pages(), 0, "unshared pushes copy nothing");
        let snapshot = v.clone();
        // Mutations after the clone leave the snapshot untouched...
        v.set(3, -3);
        v.push(100);
        assert_eq!(*snapshot.get(3), 3);
        assert_eq!(snapshot.len(), 100);
        assert_eq!(*v.get(3), -3);
        assert_eq!(v.len(), 101);
        // ...and each touched a shared page exactly once.
        assert_eq!(v.copied_pages(), 2, "set page + tail page");
        // Re-touching the now-unshared pages copies nothing further.
        v.set(3, -4);
        v.push(101);
        assert_eq!(v.copied_pages(), 2);
    }

    #[test]
    fn shared_map_matches_std_hashmap() {
        let mut m: SharedMap<u64, u64> = SharedMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // A keyed pseudo-random walk with plenty of overwrites.
        let mut k = 7u64;
        for i in 0..2000u64 {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = k % 512;
            assert_eq!(m.insert(key, i), reference.insert(key, i), "key {key}");
            assert_eq!(m.len(), reference.len());
        }
        for key in 0..512u64 {
            assert_eq!(m.get(&key), reference.get(&key), "key {key}");
            assert_eq!(m.contains_key(&key), reference.contains_key(&key));
        }
        assert_eq!(m.get(&10_000), None);
    }

    #[test]
    fn shared_map_clone_isolates() {
        let mut m: SharedMap<String, usize> = SharedMap::new();
        for i in 0..100 {
            m.insert(format!("k{i}"), i);
        }
        let snapshot = m.clone();
        for i in 0..100 {
            m.insert(format!("k{i}"), i + 1000);
        }
        m.insert("fresh".to_string(), 1);
        for i in 0..100 {
            assert_eq!(snapshot.get(&format!("k{i}")), Some(&i));
            assert_eq!(m.get(&format!("k{i}")), Some(&(i + 1000)));
        }
        assert!(!snapshot.contains_key(&"fresh".to_string()));
        assert_eq!(snapshot.len(), 100);
        assert_eq!(m.len(), 101);
    }

    #[test]
    fn shared_map_update_edits_in_place_and_isolates_clones() {
        let mut m: SharedMap<u64, Vec<u32>> = SharedMap::new();
        for i in 0..50u64 {
            m.update(i % 10, Vec::new(), |v| v.push(i as u32));
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.get(&3), Some(&vec![3, 13, 23, 33, 43]));
        let snapshot = m.clone();
        m.update(3, Vec::new(), |v| v.push(999));
        m.update(77, vec![1], |v| v.push(2));
        assert_eq!(snapshot.get(&3), Some(&vec![3, 13, 23, 33, 43]));
        assert_eq!(snapshot.get(&77), None);
        assert_eq!(snapshot.len(), 10);
        assert_eq!(m.get(&3), Some(&vec![3, 13, 23, 33, 43, 999]));
        assert_eq!(m.get(&77), Some(&vec![1, 2]));
        assert_eq!(m.len(), 11);
    }

    /// Keys engineered to collide on full 64-bit hashes exercise the
    /// leaf bucket path.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Colliding(u32);
    impl Hash for Colliding {
        fn hash<H: Hasher>(&self, state: &mut H) {
            state.write_u64(42); // everyone hashes alike
        }
    }

    #[test]
    fn shared_map_remove_matches_std_hashmap() {
        let mut m: SharedMap<u64, u64> = SharedMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut k = 13u64;
        for i in 0..3000u64 {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = k % 256;
            if k % 3 == 0 {
                assert_eq!(m.remove(&key), reference.remove(&key), "key {key}");
            } else {
                assert_eq!(m.insert(key, i), reference.insert(key, i), "key {key}");
            }
            assert_eq!(m.len(), reference.len());
        }
        for key in 0..256u64 {
            assert_eq!(m.get(&key), reference.get(&key), "key {key}");
        }
        // Drain to empty: the root must unlink cleanly.
        let keys: Vec<u64> = reference.keys().copied().collect();
        for key in keys {
            assert!(m.remove(&key).is_some());
        }
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.insert(1, 1);
        assert_eq!(m.get(&1), Some(&1));
    }

    #[test]
    fn shared_map_remove_isolates_clones_and_counts_key_copies() {
        let mut m: SharedMap<u64, u64> = SharedMap::new();
        for i in 0..512u64 {
            m.insert(i, i);
        }
        assert_eq!(m.copied_keys(), 0, "unshared mutations clone no pairs");
        let snapshot = m.clone();
        let before = m.copied_keys();
        m.remove(&3);
        m.insert(7, 700);
        m.update(9, 0, |v| *v += 1);
        // The snapshot never moves...
        assert_eq!(snapshot.get(&3), Some(&3));
        assert_eq!(snapshot.get(&7), Some(&7));
        assert_eq!(snapshot.get(&9), Some(&9));
        assert_eq!(snapshot.len(), 512);
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 511);
        // ...and the three touched keys cost key-level copies, not a
        // whole-map copy: each path clones one shared leaf bucket
        // (bucket size ~1), never the other ~509 keys.
        let copied = m.copied_keys() - before;
        assert!(copied >= 3, "three shared leaves were edited: {copied}");
        assert!(copied < 64, "key copies must stay ≪ map size: {copied}");
        // Re-touching now-owned paths copies nothing further.
        let owned = m.copied_keys();
        m.insert(7, 701);
        m.update(9, 0, |v| *v += 1);
        assert_eq!(m.copied_keys(), owned);
    }

    #[test]
    fn shared_map_handles_full_hash_collisions() {
        let mut m: SharedMap<Colliding, u32> = SharedMap::new();
        for i in 0..20 {
            assert_eq!(m.insert(Colliding(i), i), None);
        }
        assert_eq!(m.len(), 20);
        for i in 0..20 {
            assert_eq!(m.get(&Colliding(i)), Some(&i));
        }
        assert_eq!(m.insert(Colliding(7), 700), Some(7));
        assert_eq!(m.get(&Colliding(7)), Some(&700));
        assert_eq!(m.len(), 20);
        // Removal inside the shared bucket, down to empty.
        assert_eq!(m.remove(&Colliding(7)), Some(700));
        assert_eq!(m.remove(&Colliding(7)), None);
        assert_eq!(m.get(&Colliding(7)), None);
        assert_eq!(m.len(), 19);
        for i in (0..20).filter(|&i| i != 7) {
            assert_eq!(m.remove(&Colliding(i)), Some(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn debug_renders() {
        let mut v: SharedVec<u8> = SharedVec::new();
        v.push(1);
        let mut m: SharedMap<u8, u8> = SharedMap::new();
        m.insert(1, 2);
        assert_eq!(format!("{v:?}"), "[1]");
        assert_eq!(format!("{m:?}"), "{1: 2}");
    }
}
