//! A shared work-stealing worker pool for intra-batch parallelism.
//!
//! Writer lanes already parallelize maintenance *across* independent
//! clause components; a [`WorkerPool`] parallelizes *within* one — the
//! independent delta positions of a [`tp`][crate::tp] propagation round
//! and Extended DRed's rederivation frontier partition cleanly into
//! tasks that only read a frozen pre-round view. One pool is shared by
//! every lane of a service, so a skewed workload (one hot component)
//! still saturates the machine.
//!
//! Design, in the order it matters:
//!
//! - **Deterministic merge.** [`WorkerPool::run`] takes a `Vec` of
//!   closures and returns their results *in submission order*,
//!   whichever worker ran each one. Callers submit tasks in the exact
//!   order the sequential loop would visit them and fold the results
//!   back in that same order — parallel output stays syntactically
//!   identical to sequential (see [`tp`][crate::tp] for why the tasks
//!   are independent in the first place).
//! - **Work stealing.** Each worker owns a deque; submission deals
//!   tasks round-robin. A worker that drains its own queue pops from
//!   the other queues (a *steal*, counted in
//!   [`PoolMetrics::steals_total`]) before sleeping, so one long task
//!   never strands the rest of the batch behind it. The submitting
//!   thread assists too: while waiting for results it executes queued
//!   tasks itself, which keeps a 1-worker pool deadlock-free and makes
//!   `run` useful even on a machine with a single core.
//! - **Panic containment.** Every task runs under `catch_unwind`; the
//!   payload comes back to the submitting thread as that task's `Err`
//!   result (see [`WorkerPool::run`]'s contract). The maintenance
//!   engines convert it into
//!   [`FixpointError::WorkerPanic`][crate::tp::FixpointError] — an
//!   error, not a re-panic — so a lane that submitted a doomed round
//!   rolls back through the service's ordinary error path with its
//!   mutex unpoisoned, while the pool's workers survive to serve the
//!   next batch.
//! - **No unsafe.** The crate forbids `unsafe`; workers are plain
//!   long-lived `std::thread`s and tasks are `'static` boxed closures
//!   that own (`Arc`-clone) everything they touch.
//! - **Poison-proof.** The pool's own queue and lull mutexes recover
//!   from poison instead of `expect`ing on it (see `lock_clean`'s
//!   rationale): infrastructure that exists to contain panics must not
//!   itself panic on the evidence of one. A `run` against a poisoned
//!   pool degrades to the submitting thread draining the queues
//!   sequentially — slower, never stuck, never unwinding into the
//!   lane.
//!
//! The pool is metric-instrumented ([`PoolMetrics`]: tasks executed,
//! steals, busy workers) and carries the same test-only fault hook
//! discipline as the service: [`WorkerPool::set_fault_hook`] installs a
//! callback fired before each task, so a hook that panics exercises
//! exactly the mid-task worker panic the containment exists for.

use mmv_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A queued unit of work: owns everything it touches, reports through
/// the channel it captured.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Locks a pool mutex, recovering from poison instead of panicking.
///
/// The pool exists to *contain* panics, so its own locks must never
/// re-raise one. Poison here can only mean a thread died while holding
/// a queue or lull guard — and every critical section under those
/// guards is a plain `VecDeque` push/pop or an empty wait slot, none
/// of which can leave torn state. Clearing the poison and carrying on
/// is therefore always sound; in the worst case (every worker somehow
/// gone) the submitting thread's assist loop still drains the queues
/// sequentially, so `run` completes degraded rather than panicking the
/// lane that called it.
fn lock_clean<T: ?Sized>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    }
}

/// Test-only hook fired (under the containment boundary) before each
/// task, with the task's submission index.
pub type PoolFaultHook = Box<dyn FnMut(usize) + Send>;

/// Detached instruments for one pool, registered into the service's
/// [`MetricsRegistry`] like every other subsystem's.
#[derive(Clone, Debug, Default)]
pub struct PoolMetrics {
    /// Tasks executed (by workers and by assisting submitters).
    pub tasks_total: Counter,
    /// Cross-queue pops by workers that drained their own queue.
    pub steals_total: Counter,
    /// Workers currently executing a task (submitter assists are not
    /// counted — they are busy by definition).
    pub workers_busy: Gauge,
}

impl PoolMetrics {
    /// Registers the pool instruments under their `mmv_pool_` names.
    pub fn register_into(&self, registry: &MetricsRegistry) {
        registry.register_counter(
            "mmv_pool_tasks_total",
            "Worker-pool tasks executed",
            &[],
            &self.tasks_total,
        );
        registry.register_counter(
            "mmv_pool_steals_total",
            "Worker-pool cross-queue steals",
            &[],
            &self.steals_total,
        );
        registry.register_gauge(
            "mmv_pool_workers_busy",
            "Worker-pool workers currently executing a task",
            &[],
            &self.workers_busy,
        );
    }
}

/// Shared pool state: the per-worker queues and the coordination
/// primitives around them.
struct Inner {
    /// One deque per worker; submitters deal round-robin, workers pop
    /// their own first and steal from the rest.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Wakes sleeping workers on submission and shutdown.
    signal: Condvar,
    /// The mutex `signal` waits on (guards nothing but the wait).
    lull: Mutex<()>,
    /// Set once, at drop: workers drain and exit.
    shutdown: AtomicBool,
    /// Round-robin dealing cursor.
    next: AtomicUsize,
    metrics: PoolMetrics,
    /// Fast path: skip the hook mutex when no hook is installed.
    fault_armed: AtomicBool,
    fault: Mutex<Option<PoolFaultHook>>,
}

impl Inner {
    /// Pops a job: own queue first (for `home`), then every other
    /// queue. A cross-queue pop by a worker is a steal.
    fn pop(&self, home: usize, count_steals: bool) -> Option<Job> {
        let n = self.queues.len();
        for i in 0..n {
            let q = (home + i) % n;
            let job = lock_clean(&self.queues[q]).pop_front();
            if let Some(job) = job {
                if count_steals && q != home {
                    self.metrics.steals_total.inc();
                }
                return Some(job);
            }
        }
        None
    }

    /// Fires the fault hook, if armed, with the task's index. The hook
    /// runs under its mutex and is *expected* to panic in tests, so the
    /// lock recovers from poison instead of propagating it.
    fn fire_fault(&self, index: usize) {
        // order: pairs with set_fault_hook's Release so the armed hook is visible
        if self.fault_armed.load(Ordering::Acquire) {
            let mut guard = match self.fault.lock() {
                Ok(g) => g,
                Err(p) => {
                    self.fault.clear_poison();
                    p.into_inner()
                }
            };
            if let Some(hook) = guard.as_mut() {
                hook(index);
            }
        }
    }
}

/// The long-lived worker loop: pop (stealing if needed), run, sleep.
fn worker_loop(inner: Arc<Inner>, home: usize) {
    loop {
        if let Some(job) = inner.pop(home, true) {
            inner.metrics.workers_busy.inc();
            job();
            inner.metrics.workers_busy.dec();
            continue;
        }
        // order: pairs with Drop's Release store; queue mutexes order the task handoffs
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed wait: a notify can race the queue check, so never sleep
        // unbounded. 1ms keeps the idle pool cheap and the wake latency
        // invisible next to a fixpoint round.
        let guard = lock_clean(&inner.lull);
        let _ = inner
            .signal
            .wait_timeout(guard, Duration::from_millis(1))
            .unwrap_or_else(|p| {
                inner.lull.clear_poison();
                p.into_inner()
            });
    }
}

/// A fixed-size work-stealing thread pool shared across writer lanes.
/// See the [module docs][self] for the design; the one API that matters
/// is [`WorkerPool::run`].
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let inner = Arc::new(Inner {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            signal: Condvar::new(),
            lull: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            metrics: PoolMetrics::default(),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
        });
        let workers = (0..threads)
            .map(|home| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("mmv-pool-{home}"))
                    .spawn(move || worker_loop(inner, home))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The pool's detached instruments (clone-cheap handles).
    pub fn metrics(&self) -> &PoolMetrics {
        &self.inner.metrics
    }

    /// Installs (or clears) a test-only hook fired before each task
    /// with the task's submission index. A hook that panics exercises
    /// the worker-panic containment path end to end.
    pub fn set_fault_hook(&self, hook: Option<PoolFaultHook>) {
        self.inner
            .fault_armed
            .store(hook.is_some(), Ordering::Release); // order: publishes the armed flag to workers' Acquire fast-path check
        let mut guard = match self.inner.fault.lock() {
            Ok(g) => g,
            Err(p) => {
                self.inner.fault.clear_poison();
                p.into_inner()
            }
        };
        *guard = hook;
    }

    /// Runs `tasks` to completion and returns their results in
    /// submission order. The submitting thread assists (executes queued
    /// tasks while waiting), so this never deadlocks and degrades
    /// gracefully to sequential on a busy or single-worker pool.
    ///
    /// Each result is a [`std::thread::Result`]: a task that panicked
    /// yields `Err(payload)` instead of tearing down its worker. The
    /// caller decides what a panic means; the maintenance paths turn
    /// the first one (in submission order) into
    /// [`FixpointError::WorkerPanic`][crate::tp::FixpointError], which
    /// fails the batch through the service's ordinary rollback path
    /// without poisoning the submitting lane's mutex.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<std::thread::Result<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let mut out: Vec<Option<std::thread::Result<T>>> = Vec::new();
        out.resize_with(n, || None);
        if n == 0 {
            return Vec::new();
        }
        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let job = self.package(index, task, tx.clone());
            let slot = self.inner.next.fetch_add(1, Ordering::Relaxed) % self.inner.queues.len(); // order: round-robin distribution counter; fairness only, nothing to order
            lock_clean(&self.inner.queues[slot]).push_back(job);
        }
        drop(tx);
        self.inner.signal.notify_all();
        let mut received = 0;
        while received < n {
            if let Ok((index, result)) = rx.try_recv() {
                out[index] = Some(result);
                received += 1;
                continue;
            }
            // Assist: run a queued task (ours or another submitter's)
            // instead of idling. Steals by the submitter are not
            // counted — the steal metric isolates worker-side balance.
            if let Some(job) = self.inner.pop(0, false) {
                job();
                continue;
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok((index, result)) => {
                    out[index] = Some(result);
                    received += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    unreachable!("every job owns a sender until it reports")
                }
            }
        }
        out.into_iter()
            .map(|r| r.expect("all results received"))
            .collect()
    }

    /// Boxes one task with its containment boundary and result channel.
    fn package<T, F>(
        &self,
        index: usize,
        task: F,
        tx: Sender<(usize, std::thread::Result<T>)>,
    ) -> Job
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                inner.fire_fault(index);
                task()
            }));
            inner.metrics.tasks_total.inc();
            // The receiver can be gone only if the submitter itself
            // panicked out of `run`; the result is then moot.
            let _ = tx.send((index, result));
        })
    }
}

/// The human-readable form of a captured panic payload: `&str` and
/// `String` payloads verbatim (the overwhelmingly common case —
/// `panic!` with a message), a placeholder otherwise.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release); // order: pairs with workers' Acquire shutdown check; joins do the final sync
        self.inner.signal.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    if i % 7 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    i * 2
                }
            })
            .collect();
        let results = pool.run(tasks);
        let values: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(pool.metrics().tasks_total.get(), 64);
    }

    #[test]
    fn single_worker_pool_cannot_deadlock() {
        let pool = WorkerPool::new(1);
        let results = pool.run((0..16).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results.len(), 16);
        assert!(results.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn a_panicking_task_is_contained_and_indexed() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 dies");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run(tasks);
        for (i, r) in results.into_iter().enumerate() {
            if i == 3 {
                assert!(r.is_err(), "task 3 panicked");
            } else {
                assert_eq!(r.unwrap(), i);
            }
        }
        // The pool survived: a follow-up batch runs clean.
        let again = pool.run(vec![|| 41usize, || 1]);
        assert_eq!(again.into_iter().map(|r| r.unwrap()).sum::<usize>(), 42);
    }

    #[test]
    fn fault_hook_panics_surface_as_task_errors() {
        let pool = WorkerPool::new(2);
        pool.set_fault_hook(Some(Box::new(|index| {
            if index == 1 {
                panic!("injected fault");
            }
        })));
        let results = pool.run(vec![|| 0usize, || 1, || 2]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        pool.set_fault_hook(None);
        let clean = pool.run(vec![|| 7usize]);
        assert_eq!(clean[0].as_ref().copied().unwrap(), 7);
    }

    #[test]
    fn poisoned_queue_and_lull_locks_degrade_to_draining() {
        let pool = WorkerPool::new(2);
        // Poison a queue mutex and the lull mutex by panicking while
        // holding their guards — the only way these can ever poison,
        // since no user code runs under them in production.
        let inner = Arc::clone(&pool.inner);
        let _ = std::thread::spawn(move || {
            let _q = inner.queues[0].lock().unwrap();
            let _l = inner.lull.try_lock();
            panic!("poison the pool locks");
        })
        .join();
        assert!(pool.inner.queues[0].is_poisoned());
        // The pool still runs every task to completion: submission,
        // worker pops, and the caller-assist drain all recover the
        // locks instead of panicking the submitting lane.
        let results = pool.run((0..32).map(|i| move || i * 3).collect::<Vec<_>>());
        let values: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..32).map(|i| i * 3).collect::<Vec<_>>());
        assert!(!pool.inner.queues[0].is_poisoned(), "poison cleared");
        // And panic containment still works on the recovered pool.
        let mixed = pool.run(vec![
            Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
            Box::new(|| panic!("still contained")),
        ]);
        assert!(mixed[0].is_ok() && mixed[1].is_err());
    }

    #[test]
    fn metrics_register_and_render() {
        let pool = WorkerPool::new(2);
        let _ = pool.run((0..4).map(|i| move || i).collect::<Vec<_>>());
        let reg = MetricsRegistry::new();
        pool.metrics().register_into(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("mmv_pool_tasks_total 4"), "{text}");
        assert!(text.contains("mmv_pool_steals_total"), "{text}");
        assert!(text.contains("mmv_pool_workers_busy"), "{text}");
        mmv_obs::validate_prometheus(&text).unwrap();
    }
}
