//! Predicate dependency graph and shard partitioning.
//!
//! The clause structure of a [`ConstrainedDatabase`] tells us exactly
//! which predicates an update can reach: maintenance of a deletion or
//! insertion against predicate `p` only ever touches predicates
//! connected to `p` through some clause (head ↔ body edges). Predicates
//! in *different* connected components are provably independent — a
//! batch against one can never derive, weaken or remove an entry of the
//! other — so a view service can maintain them on separate writer lanes
//! with no coordination beyond publication.
//!
//! [`ShardMap::from_db`] builds the dependency graph, partitions the
//! predicates into connected components, and (optionally) merges
//! components down to a configured maximum lane count
//! ([`ShardSpec::at_most`]), balancing by predicate count. The result is
//! deterministic for a given database and spec: components are ordered
//! by their lexicographically smallest predicate, and merged greedily
//! largest-first into the least-loaded shard.
//!
//! A shard is *closed* under clause dependencies: every clause's head
//! and body predicates land in the same shard, so
//! [`ConstrainedDatabase::restrict_to_heads`] of a shard's predicate set
//! is a self-contained sub-database (with original clause numbering
//! preserved — supports built against it are identical to supports
//! built against the full database).

use crate::batch::UpdateBatch;
use crate::program::ConstrainedDatabase;
use mmv_constraints::fxhash::{FxHashMap, FxHashSet, FxHasher};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Index of a shard (a writer lane) within a [`ShardMap`].
pub type ShardId = usize;

/// How to partition a database's predicates into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Upper bound on the number of shards; `None` keeps one shard per
    /// connected component.
    pub max_shards: Option<usize>,
}

impl ShardSpec {
    /// One shard per connected component of the dependency graph.
    pub fn auto() -> Self {
        ShardSpec { max_shards: None }
    }

    /// At most `n` shards (`n ≥ 1`): components are merged down to `n`
    /// lanes, balanced by predicate count.
    pub fn at_most(n: usize) -> Self {
        assert!(n >= 1, "a service needs at least one shard");
        ShardSpec {
            max_shards: Some(n),
        }
    }

    /// A single shard — the pre-sharding single-writer-lane behavior,
    /// and the reference arm of the sharded-vs-single-lane equivalence
    /// tests.
    pub fn single_lane() -> Self {
        ShardSpec::at_most(1)
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::auto()
    }
}

/// A deterministic partition of a database's predicates into shards.
#[derive(Debug, Clone)]
pub struct ShardMap {
    /// Predicates per shard, each list sorted.
    preds: Vec<Vec<Arc<str>>>,
    by_pred: FxHashMap<Arc<str>, ShardId>,
}

impl ShardMap {
    /// Partitions `db`'s predicates: union-find over head ↔ body edges,
    /// one component per shard, merged down to `spec.max_shards` when
    /// set. A database with no predicates still gets one (empty) shard.
    pub fn from_db(db: &ConstrainedDatabase, spec: &ShardSpec) -> ShardMap {
        // ---- Collect predicates and union head/body of each clause ----
        let mut index: FxHashMap<Arc<str>, usize> = FxHashMap::default();
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut intern = |p: &Arc<str>, names: &mut Vec<Arc<str>>| -> usize {
            if let Some(&i) = index.get(p) {
                return i;
            }
            let i = names.len();
            index.insert(p.clone(), i);
            names.push(p.clone());
            i
        };
        let mut parent: Vec<usize> = Vec::new();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for (_, clause) in db.clauses() {
            let h = intern(&clause.head_pred, &mut names);
            while parent.len() < names.len() {
                parent.push(parent.len());
            }
            for b in &clause.body {
                let bi = intern(&b.pred, &mut names);
                while parent.len() < names.len() {
                    parent.push(parent.len());
                }
                let (rh, rb) = (find(&mut parent, h), find(&mut parent, bi));
                if rh != rb {
                    parent[rb] = rh;
                }
            }
        }

        // ---- Components, ordered by smallest member predicate ----
        let mut comps: FxHashMap<usize, Vec<Arc<str>>> = FxHashMap::default();
        for (i, name) in names.iter().enumerate() {
            let r = find(&mut parent, i);
            comps.entry(r).or_default().push(name.clone());
        }
        let mut comps: Vec<Vec<Arc<str>>> = comps.into_values().collect();
        for c in &mut comps {
            c.sort();
        }
        comps.sort_by(|a, b| a[0].cmp(&b[0]));

        // ---- Merge down to max_shards, balancing by predicate count ----
        let target = match spec.max_shards {
            Some(n) => n.min(comps.len()).max(1),
            None => comps.len().max(1),
        };
        let mut shards: Vec<Vec<Arc<str>>> = vec![Vec::new(); target];
        // Largest component first into the least-loaded shard; ties go
        // to the lowest shard index, so the layout is deterministic.
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_by(|&a, &b| {
            comps[b]
                .len()
                .cmp(&comps[a].len())
                .then(comps[a][0].cmp(&comps[b][0]))
        });
        for ci in order {
            let lightest = (0..target).min_by_key(|&s| (shards[s].len(), s)).unwrap();
            shards[lightest].extend(comps[ci].iter().cloned());
        }
        for s in &mut shards {
            s.sort();
        }
        // Re-order shards by their smallest predicate (empty shards
        // last) so shard ids don't depend on the merge walk.
        shards.sort_by(|a, b| match (a.first(), b.first()) {
            (Some(x), Some(y)) => x.cmp(y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        });

        let mut by_pred = FxHashMap::default();
        for (s, preds) in shards.iter().enumerate() {
            for p in preds {
                by_pred.insert(p.clone(), s);
            }
        }
        ShardMap {
            preds: shards,
            by_pred,
        }
    }

    /// Number of shards (always ≥ 1).
    pub fn num_shards(&self) -> usize {
        self.preds.len()
    }

    /// Whether the map has a single shard (the single-lane layout).
    pub fn is_single(&self) -> bool {
        self.preds.len() == 1
    }

    /// The shard of a predicate. Predicates the database never mentions
    /// hash to a stable shard — an update against such a predicate only
    /// ever touches that predicate (no clause can reach it), so any
    /// consistent assignment is correct.
    pub fn shard_of(&self, pred: &str) -> ShardId {
        if let Some(&s) = self.by_pred.get(pred) {
            return s;
        }
        let mut h = FxHasher::default();
        pred.hash(&mut h);
        (h.finish() as usize) % self.preds.len()
    }

    /// The predicates of a shard, sorted.
    pub fn preds(&self, shard: ShardId) -> &[Arc<str>] {
        &self.preds[shard]
    }

    /// The sub-database a shard's lane maintains: `db` restricted to
    /// clauses whose head predicate belongs to the shard (original
    /// clause numbering preserved). Because shards are closed under
    /// clause dependencies, the restriction is self-contained.
    pub fn restrict_db(&self, db: &ConstrainedDatabase, shard: ShardId) -> ConstrainedDatabase {
        if self.is_single() {
            return db.clone();
        }
        let mine: FxHashSet<&str> = self.preds[shard].iter().map(|p| p.as_ref()).collect();
        db.restrict_to_heads(|p| mine.contains(p))
    }

    /// Splits a batch by shard: each update request routes to the shard
    /// of its predicate, preserving the relative order of deletions and
    /// of insertions. Returns the non-empty parts in ascending shard id
    /// (the canonical lane-locking order) together with, for each part,
    /// the positions its insertions held in the original batch (the
    /// ticket subsequence for [`crate::batch::apply_batch_ticketed`]).
    pub fn split(&self, batch: &UpdateBatch) -> Vec<ShardPart> {
        let mut parts: FxHashMap<ShardId, ShardPart> = FxHashMap::default();
        for d in &batch.deletes {
            let s = self.shard_of(&d.pred);
            parts
                .entry(s)
                .or_insert_with(|| ShardPart::new(s))
                .batch
                .deletes
                .push(d.clone());
        }
        for (i, ins) in batch.inserts.iter().enumerate() {
            let s = self.shard_of(&ins.pred);
            let part = parts.entry(s).or_insert_with(|| ShardPart::new(s));
            part.batch.inserts.push(ins.clone());
            part.insert_positions.push(i);
        }
        let mut out: Vec<ShardPart> = parts.into_values().collect();
        out.sort_by_key(|p| p.shard);
        out
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, preds) in self.preds.iter().enumerate() {
            write!(f, "shard {s}:")?;
            for p in preds {
                write!(f, " {p}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One shard's slice of a split [`UpdateBatch`].
#[derive(Debug, Clone)]
pub struct ShardPart {
    /// The shard the part routes to.
    pub shard: ShardId,
    /// The shard's deletions and insertions, in original relative order.
    pub batch: UpdateBatch,
    /// For each insertion of `batch`, its position in the original
    /// batch's insertion list.
    pub insert_positions: Vec<usize>,
}

impl ShardPart {
    fn new(shard: ShardId) -> Self {
        ShardPart {
            shard,
            batch: UpdateBatch::new(),
            insert_positions: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::ConstrainedAtom;
    use crate::program::{BodyAtom, Clause};
    use mmv_constraints::{Constraint, Term, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// Three independent chains b_i -> a_i plus one isolated fact pred.
    fn chains_db() -> ConstrainedDatabase {
        let mut clauses = Vec::new();
        for i in 0..3 {
            clauses.push(Clause::fact(
                &format!("b{i}"),
                vec![x()],
                Constraint::truth(),
            ));
            clauses.push(Clause::new(
                &format!("a{i}"),
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new(&format!("b{i}"), vec![x()])],
            ));
        }
        clauses.push(Clause::fact("lone", vec![x()], Constraint::truth()));
        ConstrainedDatabase::from_clauses(clauses)
    }

    #[test]
    fn components_become_shards() {
        let db = chains_db();
        let map = ShardMap::from_db(&db, &ShardSpec::auto());
        assert_eq!(map.num_shards(), 4);
        for i in 0..3 {
            assert_eq!(
                map.shard_of(&format!("a{i}")),
                map.shard_of(&format!("b{i}")),
                "head and body of a clause must share a shard"
            );
        }
        let mut seen: Vec<ShardId> = (0..3)
            .map(|i| map.shard_of(&format!("b{i}")))
            .chain([map.shard_of("lone")])
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 4, "independent components split apart");
    }

    #[test]
    fn max_shards_merges_components_deterministically() {
        let db = chains_db();
        let map = ShardMap::from_db(&db, &ShardSpec::at_most(2));
        assert_eq!(map.num_shards(), 2);
        // Rebuilding yields the identical layout.
        let again = ShardMap::from_db(&db, &ShardSpec::at_most(2));
        for s in 0..2 {
            assert_eq!(map.preds(s), again.preds(s));
        }
        // Components stay intact inside their shard.
        for i in 0..3 {
            assert_eq!(
                map.shard_of(&format!("a{i}")),
                map.shard_of(&format!("b{i}"))
            );
        }
        let single = ShardMap::from_db(&db, &ShardSpec::single_lane());
        assert_eq!(single.num_shards(), 1);
        assert!(single.is_single());
    }

    #[test]
    fn unknown_predicates_route_stably() {
        let db = chains_db();
        let map = ShardMap::from_db(&db, &ShardSpec::auto());
        let s1 = map.shard_of("ghost");
        let s2 = map.shard_of("ghost");
        assert_eq!(s1, s2);
        assert!(s1 < map.num_shards());
    }

    #[test]
    fn empty_db_gets_one_shard() {
        let db = ConstrainedDatabase::new();
        let map = ShardMap::from_db(&db, &ShardSpec::auto());
        assert_eq!(map.num_shards(), 1);
        assert_eq!(map.shard_of("anything"), 0);
    }

    #[test]
    fn split_routes_and_orders_parts() {
        let db = chains_db();
        let map = ShardMap::from_db(&db, &ShardSpec::auto());
        let atom = |p: &str| ConstrainedAtom::new(p, vec![x()], Constraint::truth());
        let batch = UpdateBatch::deleting(vec![atom("b2"), atom("b0"), atom("b2")])
            .insert(atom("b1"))
            .insert(atom("b2"))
            .insert(atom("b1"));
        let parts = map.split(&batch);
        assert_eq!(parts.len(), 3);
        // Ascending shard ids.
        assert!(parts.windows(2).all(|w| w[0].shard < w[1].shard));
        let for_pred = |p: &str| {
            parts
                .iter()
                .find(|part| part.shard == map.shard_of(p))
                .expect("part exists")
        };
        assert_eq!(for_pred("b2").batch.deletes.len(), 2);
        assert_eq!(for_pred("b0").batch.deletes.len(), 1);
        assert_eq!(for_pred("b1").batch.inserts.len(), 2);
        // Ticket positions index into the original insertion list.
        assert_eq!(for_pred("b1").insert_positions, vec![0, 2]);
        assert_eq!(for_pred("b2").insert_positions, vec![1]);
    }

    #[test]
    fn restricted_db_preserves_clause_numbers() {
        let db = chains_db();
        let map = ShardMap::from_db(&db, &ShardSpec::auto());
        let s = map.shard_of("b1");
        let sub = map.restrict_db(&db, s);
        assert_eq!(sub.len(), 2);
        for (cid, clause) in sub.clauses() {
            assert_eq!(db.clause(cid).head_pred, clause.head_pred);
            assert_eq!(sub.clause(cid).head_pred, clause.head_pred);
        }
    }
}
