//! Batched update transactions: one maintenance pass per *set* of
//! updates.
//!
//! The paper's algorithms are defined over sets of updates — `Del` and
//! `Add` are sets of constrained atoms — but the single-atom entry
//! points ([`crate::dred_delete`], [`crate::stdel_delete`],
//! [`crate::insert_atom`]) process one request per maintenance pass.
//! [`UpdateBatch`] packages a transaction's deletions and insertions,
//! and [`apply_batch`] applies it with the set-oriented entry points:
//! deletions first (one `P_OUT` unfolding seeded with every deleted
//! atom and a single rederivation fixpoint for Extended DRed; one
//! support walk for StDel), then insertions (one `P_ADD` propagation
//! seeded with every `Add` entry). Maintaining the combined batch shares
//! the per-pass work — frontier seeding, support-forest sorting,
//! rederivation deltas — that per-update maintenance repeats.
//!
//! The deletion algorithm is chosen by the view's [`SupportMode`]:
//! `Plain` views use Extended DRed (Algorithm 1), `WithSupports` views
//! use StDel (Algorithm 2). Within a batch, deletions apply before
//! insertions, so a batch that deletes and inserts overlapping regions
//! ends with the inserted instances present.

use crate::atom::ConstrainedAtom;
use crate::delete_dred::{dred_delete_batch, DredError, ExtDredStats};
use crate::delete_stdel::{stdel_delete_batch, StDelError, StDelStats};
use crate::insert::{insert_batch, insert_batch_ticketed, InsertBatchStats};
use crate::program::ConstrainedDatabase;
use crate::tp::{FixpointConfig, FixpointError, Operator};
use crate::view::{MaterializedView, SupportMode};
use mmv_constraints::DomainResolver;
use std::fmt;

/// One update transaction: a set of deletions and a set of insertions,
/// applied atomically by [`apply_batch`] (deletions first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Constrained atoms whose instances leave the view.
    pub deletes: Vec<ConstrainedAtom>,
    /// Constrained atoms whose instances enter the view.
    pub inserts: Vec<ConstrainedAtom>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// A pure-deletion batch.
    pub fn deleting(deletes: Vec<ConstrainedAtom>) -> Self {
        UpdateBatch {
            deletes,
            inserts: Vec::new(),
        }
    }

    /// A pure-insertion batch.
    pub fn inserting(inserts: Vec<ConstrainedAtom>) -> Self {
        UpdateBatch {
            deletes: Vec::new(),
            inserts,
        }
    }

    /// Adds a deletion request.
    pub fn delete(mut self, atom: ConstrainedAtom) -> Self {
        self.deletes.push(atom);
        self
    }

    /// Adds an insertion request.
    pub fn insert(mut self, atom: ConstrainedAtom) -> Self {
        self.inserts.push(atom);
        self
    }

    /// Total update requests in the batch.
    pub fn len(&self) -> usize {
        self.deletes.len() + self.inserts.len()
    }

    /// Whether the batch carries no requests.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.inserts.is_empty()
    }
}

impl fmt::Display for UpdateBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.deletes {
            writeln!(f, "- {d}")?;
        }
        for i in &self.inserts {
            writeln!(f, "+ {i}")?;
        }
        Ok(())
    }
}

/// Statistics of the deletion phase of a batch (per deletion algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteStats {
    /// No deletions were requested.
    None,
    /// Extended DRed statistics (`Plain` views).
    Dred(ExtDredStats),
    /// StDel statistics (`WithSupports` views).
    StDel(StDelStats),
}

impl DeleteStats {
    /// Accumulates another part's deletion statistics. The algorithm is
    /// fixed by the view's support mode, so parts of one batch always
    /// carry the same variant (or `None`).
    pub fn absorb(&mut self, other: &DeleteStats) {
        match (self, other) {
            (_, DeleteStats::None) => {}
            (this @ DeleteStats::None, o) => *this = *o,
            (DeleteStats::Dred(a), DeleteStats::Dred(b)) => a.absorb(b),
            (DeleteStats::StDel(a), DeleteStats::StDel(b)) => a.absorb(b),
            _ => unreachable!("one batch never mixes deletion algorithms"),
        }
    }
}

/// Statistics of one applied batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Deletion-phase statistics.
    pub deletes: DeleteStats,
    /// Insertion-phase statistics.
    pub inserts: InsertBatchStats,
    /// Live view entries after the batch (under a sharded writer, the
    /// total across all shards).
    pub view_entries: usize,
}

impl BatchStats {
    /// An empty accumulator for merging per-shard parts.
    pub fn empty() -> Self {
        BatchStats {
            deletes: DeleteStats::None,
            inserts: InsertBatchStats::default(),
            view_entries: 0,
        }
    }

    /// Accumulates another part's statistics (`view_entries` is summed;
    /// a sharded caller overwrites it with the global total afterwards).
    pub fn absorb(&mut self, o: &BatchStats) {
        self.deletes.absorb(&o.deletes);
        self.inserts.absorb(&o.inserts);
        self.view_entries += o.view_entries;
    }
}

/// Failure to apply a batch. The view must be considered corrupt after
/// an error: a batch is not internally transactional. If rollback
/// matters, apply batches to a scratch view and publish only on success
/// (the `mmv-service` writer works this way: readers keep the last
/// published snapshot whenever a batch fails).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchError {
    /// The deletion phase failed (Extended DRed).
    Dred(DredError),
    /// The deletion phase failed (StDel).
    StDel(StDelError),
    /// The insertion phase failed.
    Insert(FixpointError),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Dred(e) => write!(f, "batch deletion (DRed): {e}"),
            BatchError::StDel(e) => write!(f, "batch deletion (StDel): {e}"),
            BatchError::Insert(e) => write!(f, "batch insertion: {e}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Dred(e) => Some(e),
            BatchError::StDel(e) => Some(e),
            BatchError::Insert(e) => Some(e),
        }
    }
}

impl From<DredError> for BatchError {
    fn from(e: DredError) -> Self {
        BatchError::Dred(e)
    }
}

impl From<StDelError> for BatchError {
    fn from(e: StDelError) -> Self {
        BatchError::StDel(e)
    }
}

impl From<FixpointError> for BatchError {
    fn from(e: FixpointError) -> Self {
        BatchError::Insert(e)
    }
}

/// Applies one [`UpdateBatch`] to the view: batched deletion (algorithm
/// chosen by the view's support mode), then batched insertion. `op`
/// selects the admission semantics of the insertion propagation (match
/// how the view was built).
pub fn apply_batch(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    batch: &UpdateBatch,
    resolver: &dyn DomainResolver,
    op: Operator,
    config: &FixpointConfig,
) -> Result<BatchStats, BatchError> {
    let deletes = delete_phase(db, view, batch, resolver, config)?;
    let inserts = insert_batch(db, view, &batch.inserts, resolver, op, config)?;
    Ok(BatchStats {
        deletes,
        inserts,
        view_entries: view.len(),
    })
}

/// [`apply_batch`] with caller-chosen external-insertion tickets, one
/// per insertion request (see [`insert_batch_ticketed`]).
/// The sharded `mmv-service` writer reserves a batch's ticket range
/// globally and applies each shard's slice with the positions its
/// insertions held in the unsplit batch, so the union of the per-shard
/// views is syntactically equal to the single-lane result.
pub fn apply_batch_ticketed(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    batch: &UpdateBatch,
    tickets: &[u64],
    resolver: &dyn DomainResolver,
    op: Operator,
    config: &FixpointConfig,
) -> Result<BatchStats, BatchError> {
    let deletes = delete_phase(db, view, batch, resolver, config)?;
    let inserts = insert_batch_ticketed(db, view, &batch.inserts, tickets, resolver, op, config)?;
    Ok(BatchStats {
        deletes,
        inserts,
        view_entries: view.len(),
    })
}

fn delete_phase(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    batch: &UpdateBatch,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<DeleteStats, BatchError> {
    if batch.deletes.is_empty() {
        return Ok(DeleteStats::None);
    }
    Ok(match view.mode() {
        SupportMode::Plain => DeleteStats::Dred(dred_delete_batch(
            db,
            view,
            &batch.deletes,
            resolver,
            config,
        )?),
        SupportMode::WithSupports => DeleteStats::StDel(stdel_delete_batch(
            view,
            &batch.deletes,
            resolver,
            &config.solver,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BodyAtom, Clause};
    use crate::tp::fixpoint;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, SolverConfig, Term, Value, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn interval_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(pred: &str, v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    fn build(db: &ConstrainedDatabase, mode: SupportMode) -> MaterializedView {
        fixpoint(
            db,
            &NoDomains,
            Operator::Tp,
            mode,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn batch_applies_deletes_then_inserts_in_both_modes() {
        let db = interval_db();
        let cfg = FixpointConfig::default();
        let scfg = SolverConfig::default();
        let batch = UpdateBatch::new()
            .delete(point("b", 3))
            .delete(point("b", 5))
            .insert(point("b", 20));
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            let mut view = build(&db, mode);
            let stats = apply_batch(&db, &mut view, &batch, &NoDomains, Operator::Tp, &cfg)
                .expect("batch applies");
            match (mode, &stats.deletes) {
                (SupportMode::Plain, DeleteStats::Dred(d)) => assert_eq!(d.del_atoms, 2),
                (SupportMode::WithSupports, DeleteStats::StDel(s)) => {
                    assert_eq!(s.direct_replacements, 2)
                }
                other => panic!("wrong deletion algorithm for {other:?}"),
            }
            assert_eq!(stats.inserts.added, 1);
            // Deleted points are gone from both b and the derived a.
            for pred in ["a", "b"] {
                for v in [3, 5] {
                    assert!(
                        view.query(pred, &[Some(Value::int(v))], &NoDomains, &scfg)
                            .unwrap()
                            .is_empty(),
                        "{pred}({v}) should be deleted in {mode:?}"
                    );
                }
                // The inserted point propagated up to a.
                assert_eq!(
                    view.query(pred, &[Some(Value::int(20))], &NoDomains, &scfg)
                        .unwrap()
                        .len(),
                    1,
                    "{pred}(20) should be present in {mode:?}"
                );
            }
            assert_eq!(stats.view_entries, view.len());
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let db = interval_db();
        let mut view = build(&db, SupportMode::Plain);
        let before = view.len();
        let stats = apply_batch(
            &db,
            &mut view,
            &UpdateBatch::new(),
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(stats.deletes, DeleteStats::None);
        assert_eq!(stats.inserts.added, 0);
        assert_eq!(view.len(), before);
    }

    #[test]
    fn builder_and_display() {
        let batch = UpdateBatch::deleting(vec![point("b", 1)]).insert(point("b", 2));
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        let s = batch.to_string();
        assert!(s.contains("- b(X0)"));
        assert!(s.contains("+ b(X0)"));
        assert!(UpdateBatch::inserting(vec![]).is_empty());
    }
}
