//! Materialized mediated views: sets of constrained atoms under duplicate
//! semantics (one entry per derivation), optionally indexed by supports.
//!
//! The paper's two deletion algorithms place different demands on the
//! view: Extended DRed (Algorithm 1) works on duplicate-free views
//! ([`SupportMode::Plain`]); StDel (Algorithm 2) requires every entry to
//! carry its support ([`SupportMode::WithSupports`]). The mode is fixed at
//! construction, which also gives experiment E6 (support overhead
//! ablation) its two arms.
//!
//! # The persistent store
//!
//! A view is a *handle* onto structurally-shared storage
//! ([`crate::store`]): cloning one is a handful of `Arc` bumps, never a
//! deep copy, which is what lets the `mmv-service` writer publish an
//! epoch after a k-entry batch in O(touched) rather than O(view). The
//! pieces:
//!
//! * **The entry slab** — an append-only [`SharedVec`] of immutable
//!   `Arc<Entry>` values. Entries are never mutated in place: StDel's
//!   constraint replacement swaps in a *new* `Arc<Entry>` (copy-on-write
//!   at page granularity), and tombstoning touches only the predicate
//!   index, so an entry reachable from an old snapshot can never change
//!   under its readers.
//! * **Per-predicate index pages** — each predicate's `PredIndex`
//!   (live list, live-slot map, constant-argument discrimination maps)
//!   sits behind its own `Arc` and is copied lazily on the first
//!   mutation after a clone (`Arc::make_mut`); predicates a batch never
//!   touches stay physically shared across every published epoch. The
//!   copy itself is *sub-page*: the live-slot map and the per-position
//!   constant discrimination maps are persistent tries ([`SharedMap`]),
//!   so un-sharing a touched predicate clones only two plain id vectors
//!   (a memcpy) plus O(log n) trie nodes per *touched key* — a batch
//!   that hits one constant of a 1024-entry index copies a handful of
//!   key/value pairs, not the whole index.
//! * **Global dedup indexes** — the support → entry and
//!   canonical-hash → entries maps are insert-only persistent tries
//!   ([`SharedMap`]): an insert path-copies O(log n) nodes, and clones
//!   share the rest.
//!
//! Liveness lives in the predicate index (an entry is live iff its id is
//! in its predicate's slot map), **not** in the entry — flipping a
//! mutable `alive` bit inside a shared entry would be visible to every
//! snapshot holding it. Because all sharing is behind plain `Arc`s with
//! `&self` reads and copy-on-write `&mut self` writes, concurrent
//! readers of old clones are safe by construction: the writer can only
//! ever mutate storage it has already un-shared.
//!
//! [`MaterializedView::share_stats`] reports how many entry pages /
//! predicate indexes a handle's mutations actually copied — the
//! service's per-epoch shared-vs-copied accounting.

use crate::atom::ConstrainedAtom;
use crate::store::{SharedMap, SharedVec};
use crate::support::Support;
use mmv_constraints::fxhash::{FxHashMap, FxHasher};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Subst, Term, Value, Var, VarGen};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Whether view entries carry supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportMode {
    /// Entries carry supports; duplicates (same support) impossible by
    /// Lemma 1. Required by StDel.
    WithSupports,
    /// No supports; entries deduplicated by syntactic canonical form.
    Plain,
}

/// Index of a view entry.
pub type EntryId = usize;

/// One constrained atom of the view, with its derivation metadata.
///
/// Entries are immutable once stored: maintenance replaces an entry
/// wholesale (see [`MaterializedView::replace_constraint`]) instead of
/// mutating it, and liveness is tracked by the predicate index, so a
/// snapshot holding this entry never observes a change.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The constrained atom.
    pub atom: ConstrainedAtom,
    /// The derivation index (present in `WithSupports` mode).
    pub support: Option<Support>,
    /// Per child of the support: the child's head-argument tuple as
    /// instantiated (standardized apart) inside this entry's constraint.
    /// StDel's step 3 ties the negated child constraint to these terms.
    pub children_args: Vec<Vec<Term>>,
}

/// Per-predicate access structures, maintained incrementally by
/// `insert`/`remove` so the fixpoint engine never rescans the view.
///
/// `live` holds the ids of all live entries of the predicate (unordered;
/// removal is a swap-remove through `slots`, which doubles as the
/// liveness set). `by_const[p]` discriminates live entries by the
/// constant at argument position `p`; entries whose argument at `p`
/// is a variable or field projection go to `nonconst[p]` instead — a
/// probe for value `v` at `p` must scan `by_const[p][v] ∪ nonconst[p]`,
/// since a variable argument can take any value under its constraint.
///
/// Each `PredIndex` is one copy-on-write "page": the view holds it
/// behind an `Arc` and copies it on the first mutation after a clone.
/// The expensive members — `slots` and `by_const` — are themselves
/// persistent tries, so that page copy clones trie *roots* (Arc bumps)
/// and later key mutations un-share O(log n) nodes per touched key;
/// `live`/`nonconst` stay plain vectors (their clone is a memcpy, and
/// probes borrow them as slices).
#[derive(Debug, Clone, Default)]
struct PredIndex {
    live: Vec<EntryId>,
    /// Live entry → its slot in `live` (O(1) removal); membership here
    /// *is* liveness.
    slots: SharedMap<EntryId, usize>,
    by_const: Vec<SharedMap<Value, Vec<EntryId>>>,
    nonconst: Vec<Vec<EntryId>>,
}

impl PredIndex {
    fn ensure_arity(&mut self, n: usize) {
        if self.by_const.len() < n {
            self.by_const.resize_with(n, SharedMap::new);
            self.nonconst.resize_with(n, Vec::new);
        }
    }
}

/// Un-shares a predicate index for mutation, counting the copy when one
/// actually happens (the index was still shared with an older clone).
fn cow_index<'a>(copies: &mut u64, arc: &'a mut Arc<PredIndex>) -> &'a mut PredIndex {
    crate::store::unshare_counted(arc, copies)
}

/// The result of a [`MaterializedView::probe`]: up to two borrowed id
/// lists (constant matches and non-constant entries of the chosen
/// position, or the full live list when no position was bound).
#[derive(Debug, Clone, Copy)]
pub struct Probe<'a> {
    primary: &'a [EntryId],
    secondary: &'a [EntryId],
    discriminated: bool,
}

impl<'a> Probe<'a> {
    const EMPTY: Probe<'static> = Probe {
        primary: &[],
        secondary: &[],
        discriminated: false,
    };

    /// Number of candidate entries.
    pub fn len(&self) -> usize {
        self.primary.len() + self.secondary.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the lookup was answered by the constant-argument
    /// discrimination index (at least one pattern position was bound),
    /// as opposed to falling back to the full live list.
    pub fn discriminated(&self) -> bool {
        self.discriminated
    }

    /// Iterates the candidate entry ids.
    pub fn iter(&self) -> impl Iterator<Item = EntryId> + 'a {
        self.primary.iter().chain(self.secondary).copied()
    }
}

/// A ground fact of the instance semantics `[M]`.
pub type GroundFact = (Arc<str>, Vec<Value>);

/// Failure to materialize `[M]` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// An entry's instance enumeration exceeded budgets.
    Overflow(String),
    /// An entry's instances are not finitely enumerable.
    Unknown(String),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Overflow(a) => write!(f, "instance overflow on {a}"),
            InstanceError::Unknown(a) => write!(f, "non-enumerable instances on {a}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Structural-sharing statistics of one view handle: how much of the
/// store its mutations have had to copy (cumulative — callers diff
/// across epochs), against the current totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareStats {
    /// Entry-slab pages currently allocated.
    pub entry_pages: usize,
    /// Entry-slab pages this handle's mutations copied because they
    /// were still shared with an older clone.
    pub entry_pages_copied: u64,
    /// Predicate indexes currently allocated (one per predicate).
    pub pred_indexes: usize,
    /// Predicate indexes this handle's mutations copied because they
    /// were still shared with an older clone.
    pub pred_indexes_copied: u64,
    /// Constant-discrimination keys currently held across all predicate
    /// indexes (sum of `by_const` map sizes over predicates and
    /// argument positions).
    pub by_const_keys: usize,
    /// `by_const` key/value pairs this handle's mutations physically
    /// cloned while un-sharing trie leaves — the sub-page CoW cost, to
    /// be compared against `by_const_keys` (the whole-index cost the
    /// old page-granular copy would have paid).
    pub by_const_keys_copied: u64,
    /// Live-slot-map pairs cloned while un-sharing trie leaves (the
    /// `slots` half of the sub-page copy cost).
    pub slot_keys_copied: u64,
}

impl ShareStats {
    /// Copy-counter delta `(entry_pages_copied, pred_indexes_copied)`
    /// since `before`. The cumulative counters never decrease on one
    /// handle, so a caller diffing across a batch gets the copies that
    /// batch caused.
    pub fn copied_since(&self, before: &ShareStats) -> (u64, u64) {
        (
            self.entry_pages_copied - before.entry_pages_copied,
            self.pred_indexes_copied - before.pred_indexes_copied,
        )
    }

    /// Key-level copy delta `(by_const_keys_copied, slot_keys_copied)`
    /// since `before` — the sub-page analogue of
    /// [`ShareStats::copied_since`].
    pub fn key_copies_since(&self, before: &ShareStats) -> (u64, u64) {
        (
            self.by_const_keys_copied - before.by_const_keys_copied,
            self.slot_keys_copied - before.slot_keys_copied,
        )
    }
}

/// A materialized mediated view: a cheaply-clonable handle onto a
/// persistent, structurally-shared store (see the module docs).
#[derive(Debug, Clone)]
pub struct MaterializedView {
    mode: SupportMode,
    store: SharedVec<Arc<Entry>>,
    preds: FxHashMap<Arc<str>, Arc<PredIndex>>,
    by_support: SharedMap<Support, EntryId>,
    by_canon: SharedMap<u64, Vec<EntryId>>,
    live: usize,
    next_external: u64,
    var_gen: VarGen,
    pred_copies: u64,
}

impl MaterializedView {
    /// An empty view. `var_gen` must dominate the variables of the
    /// database the view will be built from (use
    /// [`crate::program::ConstrainedDatabase::fresh_gen`]).
    pub fn new(mode: SupportMode, var_gen: VarGen) -> Self {
        MaterializedView {
            mode,
            store: SharedVec::new(),
            preds: FxHashMap::default(),
            by_support: SharedMap::new(),
            by_canon: SharedMap::new(),
            live: 0,
            next_external: 0,
            var_gen,
            pred_copies: 0,
        }
    }

    /// The view's support mode.
    pub fn mode(&self) -> SupportMode {
        self.mode
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the view has no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The view's variable generator (used by maintenance algorithms to
    /// standardize apart consistently with the view's contents).
    pub fn var_gen_mut(&mut self) -> &mut VarGen {
        &mut self.var_gen
    }

    /// A fresh external-insertion ticket (for Algorithm 3 supports).
    pub fn fresh_external_ticket(&mut self) -> u64 {
        let t = self.next_external;
        self.next_external += 1;
        t
    }

    /// Inserts an entry. Returns `None` if it duplicates an existing one
    /// (same support in `WithSupports` mode; same canonical form in
    /// `Plain` mode).
    pub fn insert(
        &mut self,
        atom: ConstrainedAtom,
        support: Option<Support>,
        children_args: Vec<Vec<Term>>,
    ) -> Option<EntryId> {
        match self.mode {
            SupportMode::WithSupports => {
                let support = support.expect("WithSupports entries need a support");
                if self.by_support.contains_key(&support) {
                    return None;
                }
                let id = self.push_entry(atom, Some(support.clone()), children_args);
                self.by_support.insert(support, id);
                Some(id)
            }
            SupportMode::Plain => {
                let key = canonical_hash(&atom);
                if let Some(ids) = self.by_canon.get(&key) {
                    let canon = canonicalize(&atom);
                    if ids
                        .iter()
                        .any(|&i| self.is_live(i) && canonicalize(&self.entry(i).atom) == canon)
                    {
                        return None;
                    }
                }
                let id = self.push_entry(atom, None, children_args);
                self.by_canon.update(key, Vec::new(), |ids| ids.push(id));
                Some(id)
            }
        }
    }

    fn push_entry(
        &mut self,
        atom: ConstrainedAtom,
        support: Option<Support>,
        children_args: Vec<Vec<Term>>,
    ) -> EntryId {
        let id = self.store.len();
        let copies = &mut self.pred_copies;
        let idx = self
            .preds
            .entry(atom.pred.clone())
            .or_insert_with(|| Arc::new(PredIndex::default()));
        let idx = cow_index(copies, idx);
        idx.ensure_arity(atom.args.len());
        let slot = idx.live.len();
        idx.live.push(id);
        idx.slots.insert(id, slot);
        for (p, t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(v) => idx.by_const[p].update(v.clone(), Vec::new(), |ids| ids.push(id)),
                _ => idx.nonconst[p].push(id),
            }
        }
        self.store.push(Arc::new(Entry {
            atom,
            support,
            children_args,
        }));
        self.live += 1;
        id
    }

    /// The entry with the given id (live or dead).
    pub fn entry(&self, id: EntryId) -> &Entry {
        self.store.get(id)
    }

    /// Whether the entry with the given id is live (not tombstoned).
    /// Liveness is tracked by the predicate index, not the entry, so
    /// entries shared with older snapshots never change.
    pub fn is_live(&self, id: EntryId) -> bool {
        id < self.store.len()
            && self
                .preds
                .get(&self.store.get(id).atom.pred)
                .is_some_and(|ix| ix.slots.contains_key(&id))
    }

    /// Crate-internal: one predicate's liveness set (live id → slot),
    /// resolved once so hot loops can test membership per id without
    /// re-hashing the predicate name.
    pub(crate) fn live_set(&self, pred: &str) -> Option<&SharedMap<EntryId, usize>> {
        self.preds.get(pred).map(|ix| &ix.slots)
    }

    /// Iterates live entries.
    pub fn live_entries(&self) -> impl Iterator<Item = (EntryId, &Entry)> {
        self.store
            .iter()
            .enumerate()
            .filter(|(id, e)| {
                self.preds
                    .get(&e.atom.pred)
                    .is_some_and(|ix| ix.slots.contains_key(id))
            })
            .map(|(id, e)| (id, e.as_ref()))
    }

    /// Ids of live entries for a predicate (unordered; borrowed from the
    /// incrementally-maintained per-predicate index). Snapshot with
    /// `.to_vec()` if the view will be mutated while iterating.
    pub fn entries_for_pred(&self, pred: &str) -> &[EntryId] {
        self.preds
            .get(pred)
            .map(|ix| ix.live.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of entry slots, live and tombstoned (every
    /// [`EntryId`] ever issued is below this watermark).
    pub fn entry_slots(&self) -> usize {
        self.store.len()
    }

    /// Structural-sharing statistics of this handle (copied vs total
    /// pages; see [`ShareStats`]).
    pub fn share_stats(&self) -> ShareStats {
        let mut by_const_keys = 0usize;
        let mut by_const_keys_copied = 0u64;
        let mut slot_keys_copied = 0u64;
        for ix in self.preds.values() {
            slot_keys_copied += ix.slots.copied_keys();
            for m in &ix.by_const {
                by_const_keys += m.len();
                by_const_keys_copied += m.copied_keys();
            }
        }
        ShareStats {
            entry_pages: self.store.page_count(),
            entry_pages_copied: self.store.copied_pages(),
            pred_indexes: self.preds.len(),
            pred_indexes_copied: self.pred_copies,
            by_const_keys,
            by_const_keys_copied,
            slot_keys_copied,
        }
    }

    /// Live candidate entries of `pred` that *may* match `pattern`
    /// (`Some(v)` = that argument position must be able to equal `v`).
    ///
    /// Uses the constant-argument discrimination index: the most
    /// selective bound position contributes its exact constant matches
    /// plus all entries with a non-constant argument there (whose
    /// constraints may or may not admit `v` — the caller's join/solve
    /// step decides). The result is a superset of the truly matching
    /// entries and a subset of all live entries of `pred`.
    pub fn probe<'a>(&'a self, pred: &str, pattern: &[Option<&Value>]) -> Probe<'a> {
        self.probe_with(pred, pattern.iter().copied())
    }

    /// [`MaterializedView::probe`] over a streamed pattern — the join
    /// engine's allocation-free entry point (the pattern is consumed
    /// positionally without materializing a buffer).
    pub fn probe_with<'a, 'p>(
        &'a self,
        pred: &str,
        pattern: impl IntoIterator<Item = Option<&'p Value>>,
    ) -> Probe<'a> {
        let Some(ix) = self.preds.get(pred) else {
            return Probe::EMPTY;
        };
        let mut best: Option<Probe<'a>> = None;
        for (p, pat) in pattern.into_iter().enumerate() {
            let Some(v) = pat else { continue };
            let consts: &[EntryId] = ix
                .by_const
                .get(p)
                .and_then(|m| m.get(v))
                .map(|ids| ids.as_slice())
                .unwrap_or(&[]);
            let nons: &[EntryId] = ix.nonconst.get(p).map(|ids| ids.as_slice()).unwrap_or(&[]);
            let cand = Probe {
                primary: consts,
                secondary: nons,
                discriminated: true,
            };
            if best.as_ref().is_none_or(|b| cand.len() < b.len()) {
                best = Some(cand);
            }
        }
        best.unwrap_or(Probe {
            primary: &ix.live,
            secondary: &[],
            discriminated: false,
        })
    }

    /// The entry owning `support`, if live.
    pub fn entry_by_support(&self, support: &Support) -> Option<EntryId> {
        self.by_support
            .get(support)
            .copied()
            .filter(|&i| self.is_live(i))
    }

    /// Tombstones an entry and unregisters it from the predicate
    /// indexes. The entry itself is untouched (it stays readable via
    /// [`MaterializedView::entry`] and shared with older snapshots);
    /// only this handle's predicate index forgets it.
    pub fn remove(&mut self, id: EntryId) -> bool {
        let pred = self.store.get(id).atom.pred.clone();
        if !self
            .preds
            .get(&pred)
            .is_some_and(|ix| ix.slots.contains_key(&id))
        {
            return false; // already tombstoned
        }
        // Per-position discrimination keys of the removed entry.
        let keys: Vec<Option<Value>> = self
            .store
            .get(id)
            .atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        let idx = self.preds.get_mut(&pred).expect("liveness just checked");
        let idx = cow_index(&mut self.pred_copies, idx);
        let slot = idx.slots.remove(&id).expect("liveness just checked");
        idx.live.swap_remove(slot);
        if let Some(&moved) = idx.live.get(slot) {
            idx.slots.insert(moved, slot);
        }
        for (p, key) in keys.iter().enumerate() {
            match key {
                Some(v) => {
                    // Drop the key outright when this was its last id —
                    // `update` would un-share the leaf only to leave an
                    // empty list behind.
                    match idx.by_const[p].get(v) {
                        Some(ids) if ids.iter().all(|&x| x == id) => {
                            idx.by_const[p].remove(v);
                        }
                        Some(_) => {
                            idx.by_const[p]
                                .update(v.clone(), Vec::new(), |ids| ids.retain(|&x| x != id));
                        }
                        None => {}
                    }
                }
                None => idx.nonconst[p].retain(|&x| x != id),
            }
        }
        self.live -= 1;
        true
    }

    /// Replaces an entry's constraint (StDel's replacement step) by
    /// swapping in a new immutable entry — the support and children
    /// metadata are retained, and snapshots sharing the old entry keep
    /// it unchanged (copy-on-write at slab-page granularity).
    pub fn replace_constraint(&mut self, id: EntryId, c: mmv_constraints::Constraint) {
        let mut e = (**self.store.get(id)).clone();
        e.atom.constraint = c;
        self.store.set(id, Arc::new(e));
    }

    /// The instance semantics `[M]`, evaluated against the resolver's
    /// current state. Errors if any entry cannot be enumerated exactly.
    pub fn instances(
        &self,
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<GroundFact>, InstanceError> {
        let mut out = BTreeSet::new();
        for (_, e) in self.live_entries() {
            match e.atom.instances(resolver, config) {
                crate::atom::Instances::Exact(tuples) => {
                    for t in tuples {
                        out.insert((e.atom.pred.clone(), t));
                    }
                }
                crate::atom::Instances::Overflow => {
                    return Err(InstanceError::Overflow(e.atom.to_string()))
                }
                crate::atom::Instances::Unknown => {
                    return Err(InstanceError::Unknown(e.atom.to_string()))
                }
            }
        }
        Ok(out)
    }

    /// Answers a query `pred(pattern)` where `None` positions are free:
    /// the set of matching ground tuples, evaluated at the resolver's
    /// current state (the `W_P` query-time semantics).
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        let mut out = BTreeSet::new();
        for &id in self.entries_for_pred(pred) {
            let e = self.entry(id);
            if e.atom.args.len() != pattern.len() {
                continue;
            }
            let mut atom = e.atom.clone();
            for (t, p) in atom.args.iter().zip(pattern) {
                if let Some(v) = p {
                    atom.constraint = atom
                        .constraint
                        .and_lit(mmv_constraints::Lit::Eq(t.clone(), Term::Const(v.clone())));
                }
            }
            match atom.instances(resolver, config) {
                crate::atom::Instances::Exact(tuples) => out.extend(tuples),
                crate::atom::Instances::Overflow => {
                    return Err(InstanceError::Overflow(e.atom.to_string()))
                }
                crate::atom::Instances::Unknown => {
                    return Err(InstanceError::Unknown(e.atom.to_string()))
                }
            }
        }
        Ok(out)
    }

    /// Boolean query: whether `pred(args)` is an instance of the view at
    /// the resolver's current state.
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        let pattern: Vec<Option<Value>> = args.iter().cloned().map(Some).collect();
        Ok(!self.query(pred, &pattern, resolver, config)?.is_empty())
    }

    /// Whether two views are *syntactically* identical (same live atoms
    /// up to variable renaming, with the same supports,
    /// order-insensitive) — the property Theorem 4 guarantees for `W_P`
    /// views across external updates. Atoms are canonicalized before
    /// comparison so that views built by differently-ordered but
    /// equivalent derivation sequences compare equal.
    pub fn syntactically_equal(&self, other: &MaterializedView) -> bool {
        fn render(v: &MaterializedView) -> Vec<String> {
            let mut out: Vec<String> = v
                .live_entries()
                .map(|(_, e)| {
                    format!(
                        "{} @ {:?}",
                        canonicalize(&e.atom),
                        e.support.as_ref().map(|s| s.to_string())
                    )
                })
                .collect();
            out.sort();
            out
        }
        render(self) == render(other)
    }

    /// Deep-copies the live entries into a fresh view (compaction).
    pub fn compact(&self) -> MaterializedView {
        let mut v = MaterializedView::new(self.mode, self.var_gen.clone());
        v.next_external = self.next_external;
        for (_, e) in self.live_entries() {
            v.insert(e.atom.clone(), e.support.clone(), e.children_args.clone());
        }
        v
    }
}

impl fmt::Display for MaterializedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, e) in self.live_entries() {
            match &e.support {
                Some(s) => writeln!(f, "{}    {}", e.atom, s)?,
                None => writeln!(f, "{}", e.atom)?,
            }
        }
        Ok(())
    }
}

/// Canonicalizes an atom: variables renamed to 0.. in first-occurrence
/// order (arguments first, then constraint literals).
pub fn canonicalize(atom: &ConstrainedAtom) -> ConstrainedAtom {
    let vars = atom.free_vars();
    let subst: Subst = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, Term::Var(Var(i as u32))))
        .collect();
    atom.substitute(&subst)
}

fn canonical_hash(atom: &ConstrainedAtom) -> u64 {
    let c = canonicalize(atom);
    let mut h = FxHasher::default();
    c.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClauseId;
    use crate::support::Producer;
    use mmv_constraints::{CmpOp, Constraint, NoDomains};

    fn atom(pred: &str, v: u32, hi: i64) -> ConstrainedAtom {
        let t = Term::var(Var(v));
        ConstrainedAtom::new(
            pred,
            vec![t.clone()],
            Constraint::cmp(t.clone(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                t,
                CmpOp::Le,
                Term::int(hi),
            )),
        )
    }

    #[test]
    fn plain_mode_dedups_by_canonical_form() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        assert!(v.insert(atom("p", 1, 3), None, vec![]).is_some());
        // Same atom up to variable renaming: deduplicated.
        assert!(v.insert(atom("p", 7, 3), None, vec![]).is_none());
        // Different bound: a new entry.
        assert!(v.insert(atom("p", 1, 4), None, vec![]).is_some());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn support_mode_dedups_by_support() {
        let mut v = MaterializedView::new(SupportMode::WithSupports, VarGen::starting_at(100));
        let s1 = Support::leaf(Producer::Clause(ClauseId(1)));
        let s2 = Support::leaf(Producer::Clause(ClauseId(2)));
        assert!(v
            .insert(atom("p", 1, 3), Some(s1.clone()), vec![])
            .is_some());
        // Same support: rejected even with a different constraint.
        assert!(v
            .insert(atom("p", 1, 4), Some(s1.clone()), vec![])
            .is_none());
        // Same atom, different support: duplicate semantics keeps both.
        assert!(v.insert(atom("p", 1, 3), Some(s2), vec![]).is_some());
        assert_eq!(v.len(), 2);
        assert!(v.entry_by_support(&s1).is_some());
    }

    #[test]
    fn instances_union_over_entries() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        v.insert(atom("p", 1, 2), None, vec![]);
        v.insert(atom("p", 1, 4), None, vec![]);
        let inst = v.instances(&NoDomains, &SolverConfig::default()).unwrap();
        assert_eq!(inst.len(), 4); // {1,2} ∪ {1,2,3,4}
    }

    #[test]
    fn query_with_pattern() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        v.insert(atom("p", 1, 5), None, vec![]);
        let hits = v
            .query(
                "p",
                &[Some(Value::int(3))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        let misses = v
            .query(
                "p",
                &[Some(Value::int(9))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(misses.is_empty());
        let all = v
            .query("p", &[None], &NoDomains, &SolverConfig::default())
            .unwrap();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn removal_tombstones() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let id = v.insert(atom("p", 1, 3), None, vec![]).unwrap();
        assert!(v.is_live(id));
        assert!(v.remove(id));
        assert!(!v.remove(id));
        assert!(!v.is_live(id));
        assert_eq!(v.len(), 0);
        assert!(v.entries_for_pred("p").is_empty());
        // The tombstoned entry stays readable.
        assert_eq!(v.entry(id).atom.pred.as_ref(), "p");
    }

    #[test]
    fn probe_discriminates_on_constant_arguments() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        for i in 0..10 {
            v.insert(
                ConstrainedAtom::fact("e", vec![Value::int(1), Value::int(i)]),
                None,
                vec![],
            );
        }
        let odd = v
            .insert(
                ConstrainedAtom::fact("e", vec![Value::int(2), Value::int(5)]),
                None,
                vec![],
            )
            .unwrap();
        // A non-constant first argument: must appear in every probe of
        // position 0 (its constraint may admit any value).
        let t = Term::var(Var(0));
        let ranged = v
            .insert(
                ConstrainedAtom::new(
                    "e",
                    vec![t.clone(), Term::int(9)],
                    Constraint::cmp(t, CmpOp::Le, Term::int(3)),
                ),
                None,
                vec![],
            )
            .unwrap();
        let two = Value::int(2);
        let hits: Vec<EntryId> = v.probe("e", &[Some(&two), None]).iter().collect();
        assert!(hits.contains(&odd));
        assert!(hits.contains(&ranged));
        assert_eq!(hits.len(), 2, "e(1, _) facts must be pruned");
        // Unbound pattern falls back to the full live list.
        assert_eq!(v.probe("e", &[None, None]).len(), 12);
        // Unknown predicate or never-seen constant yields nothing
        // constant-indexed (only the non-constant entry remains).
        assert!(v.probe("ghost", &[Some(&two), None]).is_empty());
        let unseen = Value::int(77);
        let fallback: Vec<EntryId> = v.probe("e", &[Some(&unseen), None]).iter().collect();
        assert_eq!(fallback, vec![ranged]);
        // Removal unregisters from every index list.
        assert!(v.remove(odd));
        let after: Vec<EntryId> = v.probe("e", &[Some(&two), None]).iter().collect();
        assert_eq!(after, vec![ranged]);
        assert_eq!(v.entries_for_pred("e").len(), 11);
        // The most selective bound position wins: binding position 1 to 5
        // scans the e(1,5) fact plus the nonconst-free position-1 list.
        let five = Value::int(5);
        assert_eq!(v.probe("e", &[None, Some(&five)]).len(), 1);
    }

    #[test]
    fn syntactic_equality_ignores_order() {
        let mut a = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let mut b = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        a.insert(atom("p", 1, 3), None, vec![]);
        a.insert(atom("q", 1, 3), None, vec![]);
        b.insert(atom("q", 1, 3), None, vec![]);
        b.insert(atom("p", 1, 3), None, vec![]);
        assert!(a.syntactically_equal(&b));
        b.insert(atom("r", 1, 1), None, vec![]);
        assert!(!a.syntactically_equal(&b));
    }

    #[test]
    fn compact_drops_tombstones() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let id = v.insert(atom("p", 1, 3), None, vec![]).unwrap();
        v.insert(atom("q", 1, 3), None, vec![]);
        v.remove(id);
        let c = v.compact();
        assert_eq!(c.len(), 1);
        assert!(c.syntactically_equal(&v));
    }

    #[test]
    fn clones_share_structure_and_stay_isolated() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let keep = v.insert(atom("p", 1, 3), None, vec![]).unwrap();
        let gone = v.insert(atom("q", 1, 3), None, vec![]).unwrap();
        let before = v.share_stats();
        assert_eq!(before.entry_pages_copied, 0, "unshared writes copy nothing");
        assert_eq!(before.pred_indexes_copied, 0);

        let snapshot = v.clone();
        // Tombstone q, weaken p, add r — the snapshot must not move.
        v.remove(gone);
        v.replace_constraint(
            keep,
            Constraint::cmp(Term::var(Var(1)), CmpOp::Le, Term::int(2)),
        );
        v.insert(atom("r", 1, 5), None, vec![]);
        assert_eq!(snapshot.len(), 2);
        assert!(snapshot.is_live(gone));
        assert!(snapshot
            .entry(keep)
            .atom
            .constraint
            .to_string()
            .contains(">= 1"));
        assert_eq!(v.len(), 2);
        assert!(!v.is_live(gone));
        // The mutations copied the shared slab page once and the one
        // touched predicate index (q's; constraint replacement goes to
        // the slab, and r's index is fresh, not copied).
        let after = v.share_stats();
        assert!(after.entry_pages_copied > before.entry_pages_copied);
        assert_eq!(after.pred_indexes_copied, 1, "only q's index copied");
        // The snapshot handle itself never copied anything.
        assert_eq!(snapshot.share_stats().entry_pages_copied, 0);
        assert_eq!(snapshot.share_stats().by_const_keys_copied, 0);
        assert_eq!(snapshot.share_stats().slot_keys_copied, 0);
    }

    #[test]
    fn sub_page_index_copies_only_touched_keys() {
        // 1024 entries of one predicate, each with a distinct constant:
        // the old page-granular copy would clone all 1024 discrimination
        // keys on the first post-snapshot touch. Sub-page CoW must clone
        // only the trie leaves on the touched key's path.
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let ids: Vec<EntryId> = (0..1024)
            .map(|i| {
                v.insert(
                    ConstrainedAtom::fact("e", vec![Value::int(i), Value::int(i % 7)]),
                    None,
                    vec![],
                )
                .unwrap()
            })
            .collect();
        let before = v.share_stats();
        assert_eq!(before.by_const_keys, 1024 + 7);
        assert_eq!(before.by_const_keys_copied, 0, "unshared writes are free");

        let snapshot = v.clone();
        assert!(v.remove(ids[500]));
        let (by_const_copied, slot_copied) = v.share_stats().key_copies_since(&before);
        assert!(
            by_const_copied > 0 && by_const_copied < 64,
            "one touched key must copy O(leaf) pairs, not O(index): {by_const_copied}"
        );
        assert!(
            slot_copied > 0 && slot_copied < 64,
            "slot map copies are key-granular too: {slot_copied}"
        );
        // The snapshot still sees the removed entry and every key.
        assert!(snapshot.is_live(ids[500]));
        assert_eq!(snapshot.share_stats().by_const_keys, 1024 + 7);
        let v500 = Value::int(500);
        assert_eq!(snapshot.probe("e", &[Some(&v500), None]).len(), 1);
        assert!(v.probe("e", &[Some(&v500), None]).is_empty());
    }
}
