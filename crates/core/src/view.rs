//! Materialized mediated views: sets of constrained atoms under duplicate
//! semantics (one entry per derivation), optionally indexed by supports.
//!
//! The paper's two deletion algorithms place different demands on the
//! view: Extended DRed (Algorithm 1) works on duplicate-free views
//! ([`SupportMode::Plain`]); StDel (Algorithm 2) requires every entry to
//! carry its support ([`SupportMode::WithSupports`]). The mode is fixed at
//! construction, which also gives experiment E6 (support overhead
//! ablation) its two arms.

use crate::atom::ConstrainedAtom;
use crate::support::Support;
use mmv_constraints::fxhash::{FxHashMap, FxHasher};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Subst, Term, Value, Var, VarGen};
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Whether view entries carry supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportMode {
    /// Entries carry supports; duplicates (same support) impossible by
    /// Lemma 1. Required by StDel.
    WithSupports,
    /// No supports; entries deduplicated by syntactic canonical form.
    Plain,
}

/// Index of a view entry.
pub type EntryId = usize;

/// One constrained atom of the view, with its derivation metadata.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The constrained atom.
    pub atom: ConstrainedAtom,
    /// The derivation index (present in `WithSupports` mode).
    pub support: Option<Support>,
    /// Per child of the support: the child's head-argument tuple as
    /// instantiated (standardized apart) inside this entry's constraint.
    /// StDel's step 3 ties the negated child constraint to these terms.
    pub children_args: Vec<Vec<Term>>,
    /// Whether the entry is live (dead entries are tombstones).
    pub alive: bool,
}

/// A ground fact of the instance semantics `[M]`.
pub type GroundFact = (Arc<str>, Vec<Value>);

/// Failure to materialize `[M]` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// An entry's instance enumeration exceeded budgets.
    Overflow(String),
    /// An entry's instances are not finitely enumerable.
    Unknown(String),
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::Overflow(a) => write!(f, "instance overflow on {a}"),
            InstanceError::Unknown(a) => write!(f, "non-enumerable instances on {a}"),
        }
    }
}

impl std::error::Error for InstanceError {}

/// A materialized mediated view.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    mode: SupportMode,
    entries: Vec<Entry>,
    by_pred: FxHashMap<Arc<str>, Vec<EntryId>>,
    by_support: FxHashMap<Support, EntryId>,
    by_canon: FxHashMap<u64, Vec<EntryId>>,
    live: usize,
    next_external: u64,
    var_gen: VarGen,
}

impl MaterializedView {
    /// An empty view. `var_gen` must dominate the variables of the
    /// database the view will be built from (use
    /// [`crate::program::ConstrainedDatabase::fresh_gen`]).
    pub fn new(mode: SupportMode, var_gen: VarGen) -> Self {
        MaterializedView {
            mode,
            entries: Vec::new(),
            by_pred: FxHashMap::default(),
            by_support: FxHashMap::default(),
            by_canon: FxHashMap::default(),
            live: 0,
            next_external: 0,
            var_gen,
        }
    }

    /// The view's support mode.
    pub fn mode(&self) -> SupportMode {
        self.mode
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the view has no live entries.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The view's variable generator (used by maintenance algorithms to
    /// standardize apart consistently with the view's contents).
    pub fn var_gen_mut(&mut self) -> &mut VarGen {
        &mut self.var_gen
    }

    /// A fresh external-insertion ticket (for Algorithm 3 supports).
    pub fn fresh_external_ticket(&mut self) -> u64 {
        let t = self.next_external;
        self.next_external += 1;
        t
    }

    /// Inserts an entry. Returns `None` if it duplicates an existing one
    /// (same support in `WithSupports` mode; same canonical form in
    /// `Plain` mode).
    pub fn insert(
        &mut self,
        atom: ConstrainedAtom,
        support: Option<Support>,
        children_args: Vec<Vec<Term>>,
    ) -> Option<EntryId> {
        match self.mode {
            SupportMode::WithSupports => {
                let support = support.expect("WithSupports entries need a support");
                if self.by_support.contains_key(&support) {
                    return None;
                }
                let id = self.push_entry(atom, Some(support.clone()), children_args);
                self.by_support.insert(support, id);
                Some(id)
            }
            SupportMode::Plain => {
                let key = canonical_hash(&atom);
                if let Some(ids) = self.by_canon.get(&key) {
                    let canon = canonicalize(&atom);
                    if ids.iter().any(|&i| {
                        self.entries[i].alive && canonicalize(&self.entries[i].atom) == canon
                    }) {
                        return None;
                    }
                }
                let id = self.push_entry(atom, None, children_args);
                self.by_canon.entry(key).or_default().push(id);
                Some(id)
            }
        }
    }

    fn push_entry(
        &mut self,
        atom: ConstrainedAtom,
        support: Option<Support>,
        children_args: Vec<Vec<Term>>,
    ) -> EntryId {
        let id = self.entries.len();
        self.by_pred.entry(atom.pred.clone()).or_default().push(id);
        self.entries.push(Entry {
            atom,
            support,
            children_args,
            alive: true,
        });
        self.live += 1;
        id
    }

    /// The entry with the given id (live or dead).
    pub fn entry(&self, id: EntryId) -> &Entry {
        &self.entries[id]
    }

    /// Iterates live entries.
    pub fn live_entries(&self) -> impl Iterator<Item = (EntryId, &Entry)> {
        self.entries.iter().enumerate().filter(|(_, e)| e.alive)
    }

    /// Ids of live entries for a predicate.
    pub fn entries_for_pred(&self, pred: &str) -> Vec<EntryId> {
        self.by_pred
            .get(pred)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&i| self.entries[i].alive)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The entry owning `support`, if live.
    pub fn entry_by_support(&self, support: &Support) -> Option<EntryId> {
        self.by_support
            .get(support)
            .copied()
            .filter(|&i| self.entries[i].alive)
    }

    /// Tombstones an entry.
    pub fn remove(&mut self, id: EntryId) -> bool {
        let e = &mut self.entries[id];
        if !e.alive {
            return false;
        }
        e.alive = false;
        self.live -= 1;
        true
    }

    /// Replaces an entry's constraint in place (StDel's replacement
    /// step). The support and children metadata are retained.
    pub fn replace_constraint(&mut self, id: EntryId, c: mmv_constraints::Constraint) {
        self.entries[id].atom.constraint = c;
    }

    /// The instance semantics `[M]`, evaluated against the resolver's
    /// current state. Errors if any entry cannot be enumerated exactly.
    pub fn instances(
        &self,
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<GroundFact>, InstanceError> {
        let mut out = BTreeSet::new();
        for (_, e) in self.live_entries() {
            match e.atom.instances(resolver, config) {
                crate::atom::Instances::Exact(tuples) => {
                    for t in tuples {
                        out.insert((e.atom.pred.clone(), t));
                    }
                }
                crate::atom::Instances::Overflow => {
                    return Err(InstanceError::Overflow(e.atom.to_string()))
                }
                crate::atom::Instances::Unknown => {
                    return Err(InstanceError::Unknown(e.atom.to_string()))
                }
            }
        }
        Ok(out)
    }

    /// Answers a query `pred(pattern)` where `None` positions are free:
    /// the set of matching ground tuples, evaluated at the resolver's
    /// current state (the `W_P` query-time semantics).
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        let mut out = BTreeSet::new();
        for id in self.entries_for_pred(pred) {
            let e = &self.entries[id];
            if e.atom.args.len() != pattern.len() {
                continue;
            }
            let mut atom = e.atom.clone();
            for (t, p) in atom.args.iter().zip(pattern) {
                if let Some(v) = p {
                    atom.constraint = atom
                        .constraint
                        .and_lit(mmv_constraints::Lit::Eq(t.clone(), Term::Const(v.clone())));
                }
            }
            match atom.instances(resolver, config) {
                crate::atom::Instances::Exact(tuples) => out.extend(tuples),
                crate::atom::Instances::Overflow => {
                    return Err(InstanceError::Overflow(e.atom.to_string()))
                }
                crate::atom::Instances::Unknown => {
                    return Err(InstanceError::Unknown(e.atom.to_string()))
                }
            }
        }
        Ok(out)
    }

    /// Boolean query: whether `pred(args)` is an instance of the view at
    /// the resolver's current state.
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        let pattern: Vec<Option<Value>> = args.iter().cloned().map(Some).collect();
        Ok(!self.query(pred, &pattern, resolver, config)?.is_empty())
    }

    /// Whether two views are *syntactically* identical (same live atoms
    /// and supports, order-insensitive) — the property Theorem 4
    /// guarantees for `W_P` views across external updates.
    pub fn syntactically_equal(&self, other: &MaterializedView) -> bool {
        let mut a: Vec<String> = self
            .live_entries()
            .map(|(_, e)| {
                format!(
                    "{} @ {:?}",
                    e.atom,
                    e.support.as_ref().map(|s| s.to_string())
                )
            })
            .collect();
        let mut b: Vec<String> = other
            .live_entries()
            .map(|(_, e)| {
                format!(
                    "{} @ {:?}",
                    e.atom,
                    e.support.as_ref().map(|s| s.to_string())
                )
            })
            .collect();
        a.sort();
        b.sort();
        a == b
    }

    /// Deep-copies the live entries into a fresh view (compaction).
    pub fn compact(&self) -> MaterializedView {
        let mut v = MaterializedView::new(self.mode, self.var_gen.clone());
        v.next_external = self.next_external;
        for (_, e) in self.live_entries() {
            v.insert(e.atom.clone(), e.support.clone(), e.children_args.clone());
        }
        v
    }
}

impl fmt::Display for MaterializedView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (_, e) in self.live_entries() {
            match &e.support {
                Some(s) => writeln!(f, "{}    {}", e.atom, s)?,
                None => writeln!(f, "{}", e.atom)?,
            }
        }
        Ok(())
    }
}

/// Canonicalizes an atom: variables renamed to 0.. in first-occurrence
/// order (arguments first, then constraint literals).
pub fn canonicalize(atom: &ConstrainedAtom) -> ConstrainedAtom {
    let vars = atom.free_vars();
    let subst: Subst = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, Term::Var(Var(i as u32))))
        .collect();
    atom.substitute(&subst)
}

fn canonical_hash(atom: &ConstrainedAtom) -> u64 {
    let c = canonicalize(atom);
    let mut h = FxHasher::default();
    c.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ClauseId;
    use crate::support::Producer;
    use mmv_constraints::{CmpOp, Constraint, NoDomains};

    fn atom(pred: &str, v: u32, hi: i64) -> ConstrainedAtom {
        let t = Term::var(Var(v));
        ConstrainedAtom::new(
            pred,
            vec![t.clone()],
            Constraint::cmp(t.clone(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                t,
                CmpOp::Le,
                Term::int(hi),
            )),
        )
    }

    #[test]
    fn plain_mode_dedups_by_canonical_form() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        assert!(v.insert(atom("p", 1, 3), None, vec![]).is_some());
        // Same atom up to variable renaming: deduplicated.
        assert!(v.insert(atom("p", 7, 3), None, vec![]).is_none());
        // Different bound: a new entry.
        assert!(v.insert(atom("p", 1, 4), None, vec![]).is_some());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn support_mode_dedups_by_support() {
        let mut v = MaterializedView::new(SupportMode::WithSupports, VarGen::starting_at(100));
        let s1 = Support::leaf(Producer::Clause(ClauseId(1)));
        let s2 = Support::leaf(Producer::Clause(ClauseId(2)));
        assert!(v
            .insert(atom("p", 1, 3), Some(s1.clone()), vec![])
            .is_some());
        // Same support: rejected even with a different constraint.
        assert!(v
            .insert(atom("p", 1, 4), Some(s1.clone()), vec![])
            .is_none());
        // Same atom, different support: duplicate semantics keeps both.
        assert!(v.insert(atom("p", 1, 3), Some(s2), vec![]).is_some());
        assert_eq!(v.len(), 2);
        assert!(v.entry_by_support(&s1).is_some());
    }

    #[test]
    fn instances_union_over_entries() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        v.insert(atom("p", 1, 2), None, vec![]);
        v.insert(atom("p", 1, 4), None, vec![]);
        let inst = v.instances(&NoDomains, &SolverConfig::default()).unwrap();
        assert_eq!(inst.len(), 4); // {1,2} ∪ {1,2,3,4}
    }

    #[test]
    fn query_with_pattern() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        v.insert(atom("p", 1, 5), None, vec![]);
        let hits = v
            .query(
                "p",
                &[Some(Value::int(3))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
        let misses = v
            .query(
                "p",
                &[Some(Value::int(9))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(misses.is_empty());
        let all = v
            .query("p", &[None], &NoDomains, &SolverConfig::default())
            .unwrap();
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn removal_tombstones() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let id = v.insert(atom("p", 1, 3), None, vec![]).unwrap();
        assert!(v.remove(id));
        assert!(!v.remove(id));
        assert_eq!(v.len(), 0);
        assert!(v.entries_for_pred("p").is_empty());
    }

    #[test]
    fn syntactic_equality_ignores_order() {
        let mut a = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let mut b = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        a.insert(atom("p", 1, 3), None, vec![]);
        a.insert(atom("q", 1, 3), None, vec![]);
        b.insert(atom("q", 1, 3), None, vec![]);
        b.insert(atom("p", 1, 3), None, vec![]);
        assert!(a.syntactically_equal(&b));
        b.insert(atom("r", 1, 1), None, vec![]);
        assert!(!a.syntactically_equal(&b));
    }

    #[test]
    fn compact_drops_tombstones() {
        let mut v = MaterializedView::new(SupportMode::Plain, VarGen::starting_at(100));
        let id = v.insert(atom("p", 1, 3), None, vec![]).unwrap();
        v.insert(atom("q", 1, 3), None, vec![]);
        v.remove(id);
        let c = v.compact();
        assert_eq!(c.len(), 1);
        assert!(c.syntactically_equal(&v));
    }
}
