//! The Straight Delete (StDel) algorithm — Algorithm 2 of the paper
//! (§3.1.2).
//!
//! StDel deletes constrained atoms from a support-tracked view **without
//! any rederivation step**: because every entry records, via its support,
//! exactly which derivation produced it, the effect of a deletion is
//! propagated *upward* along supports by conjoining `not(removed-region)`
//! onto each affected entry's constraint. Entries whose constraint
//! becomes unsolvable are removed (step 4).
//!
//! Processing order: entries are visited by ascending support height, so
//! all `P_OUT` pairs of a child derivation exist before any parent
//! consults them (a derivation's children are strictly lower).

use crate::atom::ConstrainedAtom;
use crate::support::Support;
use crate::view::{EntryId, MaterializedView, SupportMode};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{satisfiable_with, Constraint, DomainResolver, Lit, SolverConfig, Truth};
use std::fmt;

/// Statistics of one StDel run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StDelStats {
    /// Entries replaced in step 2 (direct matches of the deletion).
    pub direct_replacements: usize,
    /// Entries replaced in step 3 (support propagation).
    pub propagated_replacements: usize,
    /// `P_OUT` pairs emitted.
    pub pout_pairs: usize,
    /// Entries removed in step 4 (constraint no longer solvable).
    pub removed: usize,
    /// Solvability tests performed.
    pub solver_calls: usize,
}

impl StDelStats {
    /// Accumulates another run's counters (used when a batch is split
    /// across independent shards and each part reports separately).
    pub fn absorb(&mut self, o: &StDelStats) {
        self.direct_replacements += o.direct_replacements;
        self.propagated_replacements += o.propagated_replacements;
        self.pout_pairs += o.pout_pairs;
        self.removed += o.removed;
        self.solver_calls += o.solver_calls;
    }
}

/// StDel failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StDelError {
    /// The view does not track supports (use Extended DRed instead).
    NeedsSupports,
}

impl fmt::Display for StDelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StDelError::NeedsSupports => {
                write!(
                    f,
                    "StDel requires a view built with SupportMode::WithSupports"
                )
            }
        }
    }
}

impl std::error::Error for StDelError {}

/// Deletes `[deletion]`'s instances from the view (Algorithm 2). The
/// view is modified in place; its support structure is preserved so
/// further StDel calls keep working.
pub fn stdel_delete(
    view: &mut MaterializedView,
    deletion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &SolverConfig,
) -> Result<StDelStats, StDelError> {
    stdel_delete_batch(view, std::slice::from_ref(deletion), resolver, config)
}

/// Deletes the instances of a whole *set* of deletion requests in one
/// StDel pass (Algorithm 2 over the union of the requests).
///
/// Step 2 intersects each request with the view in order, so the `P_OUT`
/// pairs of all requests accumulate on the affected supports; one upward
/// propagation by support height then replaces every affected ancestor
/// exactly once per pair, and one final sweep removes entries whose
/// constraint became unsolvable. Sequential single-atom deletion walks
/// the support forest (and re-sorts it by height) once per request; the
/// batch walks it once total.
pub fn stdel_delete_batch(
    view: &mut MaterializedView,
    deletions: &[ConstrainedAtom],
    resolver: &dyn DomainResolver,
    config: &SolverConfig,
) -> Result<StDelStats, StDelError> {
    if view.mode() != SupportMode::WithSupports {
        return Err(StDelError::NeedsSupports);
    }
    let mut stats = StDelStats::default();
    // P_OUT: per child support, the regions removed from that entry
    // (step 3 may add several pairs for one support).
    let mut pout: FxHashMap<Support, Vec<ConstrainedAtom>> = FxHashMap::default();

    // ---- Step 2: direct deletions ---------------------------------------
    for deletion in deletions {
        // Snapshot: the loop below replaces constraints while iterating.
        let direct: Vec<EntryId> = view.entries_for_pred(&deletion.pred).to_vec();
        for id in direct {
            let entry = view.entry(id);
            if entry.atom.args.len() != deletion.args.len() {
                continue;
            }
            let support = entry.support.clone().expect("WithSupports mode");
            let atom = entry.atom.clone();
            // Instantiate the deletion's constraint over this entry's args.
            let dpsi = deletion
                .constraint_at(&atom.args, view.var_gen_mut())
                .expect("arity checked");
            let region = atom.constraint.clone().and(dpsi.clone());
            stats.solver_calls += 1;
            if satisfiable_with(&region, resolver, config) == Truth::Unsat {
                continue; // this entry contributes nothing to Del
            }
            // Replace F with A(X⃗) <- φ ∧ not(deletion-region).
            let new_constraint = atom.constraint.clone().and_lit(Lit::Not(dpsi));
            view.replace_constraint(id, simplify_keep(new_constraint));
            stats.direct_replacements += 1;
            // Record (removed region, spt(F)).
            pout.entry(support).or_default().push(ConstrainedAtom {
                pred: atom.pred.clone(),
                args: atom.args.clone(),
                constraint: region,
            });
            stats.pout_pairs += 1;
        }
    }
    if pout.is_empty() {
        return Ok(stats);
    }

    // ---- Step 3: upward propagation along supports -----------------------
    // Ascending support height: children are complete before parents.
    let mut by_height: Vec<(u32, EntryId)> = view
        .live_entries()
        .map(|(id, e)| (e.support.as_ref().expect("WithSupports").height(), id))
        .collect();
    by_height.sort_unstable();
    for (h, id) in by_height {
        if h == 0 {
            continue; // leaves have no children to be affected by
        }
        let entry = view.entry(id);
        let support = entry.support.clone().expect("WithSupports");
        let children: Vec<Support> = support.children().to_vec();
        for (j, child) in children.iter().enumerate() {
            let Some(pairs) = pout.get(child) else {
                continue;
            };
            let pairs = pairs.clone();
            for pair in pairs {
                let entry = view.entry(id);
                let atom = entry.atom.clone();
                let child_args = entry.children_args.get(j).cloned().unwrap_or_default();
                if child_args.len() != pair.args.len() {
                    continue;
                }
                // Instantiate the pair's removed region over the child's
                // argument tuple inside this derivation.
                let ppsi = pair
                    .constraint_at(&child_args, view.var_gen_mut())
                    .expect("arity checked");
                // Condition (c): the affected region must be solvable.
                let region = atom.constraint.clone().and(ppsi.clone());
                stats.solver_calls += 1;
                if satisfiable_with(&region, resolver, config) == Truth::Unsat {
                    continue;
                }
                // Replace F's constraint with φ ∧ not(ψ_j over child args).
                let new_constraint = atom.constraint.clone().and_lit(Lit::Not(ppsi));
                view.replace_constraint(id, simplify_keep(new_constraint));
                stats.propagated_replacements += 1;
                // Emit (removed region of F, spt(F)).
                pout.entry(support.clone())
                    .or_default()
                    .push(ConstrainedAtom {
                        pred: atom.pred.clone(),
                        args: atom.args.clone(),
                        constraint: region,
                    });
                stats.pout_pairs += 1;
            }
        }
    }

    // ---- Step 4: drop entries whose constraint became unsolvable ---------
    let affected: Vec<EntryId> = pout
        .keys()
        .filter_map(|s| view.entry_by_support(s))
        .collect();
    for id in affected {
        let c = view.entry(id).atom.constraint.clone();
        stats.solver_calls += 1;
        if satisfiable_with(&c, resolver, config) == Truth::Unsat {
            view.remove(id);
            stats.removed += 1;
        }
    }
    Ok(stats)
}

/// Simplifies a replacement constraint, keeping a canonical `false` when
/// the simplifier proves it unsatisfiable (step 4 will remove the entry).
fn simplify_keep(c: Constraint) -> Constraint {
    match mmv_constraints::simplify(&c) {
        mmv_constraints::Simplified::Constraint(s) => s,
        mmv_constraints::Simplified::Unsat => Constraint::lit(Lit::Not(Constraint::truth())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BodyAtom, Clause, ConstrainedDatabase};
    use crate::tp::{fixpoint, FixpointConfig, Operator};
    use mmv_constraints::{CmpOp, NoDomains, Term, Value, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The paper's Examples 4/5 database. The deletion of `B(X) <- X = 6`
    /// is only non-vacuous if the facts read `X >= 3` / `X >= 5` (the
    /// comparison glyphs are ambiguous in the source scan; the >= reading
    /// is the one consistent with both examples' walk-throughs).
    fn example5_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    fn build(db: &ConstrainedDatabase) -> MaterializedView {
        fixpoint(
            db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0
    }

    fn rendered(view: &MaterializedView) -> Vec<String> {
        let mut v: Vec<String> = view
            .live_entries()
            .map(|(_, e)| crate::view::canonicalize(&e.atom).to_string())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn paper_example_5_stdel_run() {
        // Delete B(X) <- X = 6 from Example 5's view.
        let db = example5_db();
        let mut view = build(&db);
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(6)));
        let stats =
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
        // Exactly as the paper walks it: B(X)<-X<=5 replaced (step 2);
        // A(X)<-X<=5 replaced (support <1,<2>> contains <2>);
        // C(X)<-X<=5 replaced (support <3,<1,<2>>>).
        assert_eq!(stats.direct_replacements, 1);
        assert_eq!(stats.propagated_replacements, 2);
        assert_eq!(stats.pout_pairs, 3);
        assert_eq!(stats.removed, 0);
        // The final view simplifies to the paper's result.
        assert_eq!(
            rendered(&view),
            vec![
                "A(X0) <- X0 >= 3",
                "A(X0) <- X0 >= 5 & X0 != 6",
                "B(X0) <- X0 >= 5 & X0 != 6",
                "C(X0) <- X0 >= 3",
                "C(X0) <- X0 >= 5 & X0 != 6",
            ]
        );
    }

    #[test]
    fn paper_example_6_recursive_stdel() {
        // Example 6: delete P(X,Y) <- X = c & Y = d; entries 3, 6, 7
        // become unsolvable and are removed.
        let (xv, yv, zv) = (Term::var(Var(0)), Term::var(Var(1)), Term::var(Var(2)));
        let pfact = |a: &str, b: &str| {
            Clause::fact(
                "P",
                vec![xv.clone(), yv.clone()],
                Constraint::eq(xv.clone(), Term::str(a))
                    .and(Constraint::eq(yv.clone(), Term::str(b))),
            )
        };
        let db = ConstrainedDatabase::from_clauses(vec![
            pfact("a", "b"),
            pfact("a", "c"),
            pfact("c", "d"),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![BodyAtom::new("P", vec![xv.clone(), yv.clone()])],
            ),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![
                    BodyAtom::new("P", vec![xv.clone(), zv.clone()]),
                    BodyAtom::new("A", vec![zv.clone(), yv.clone()]),
                ],
            ),
        ]);
        let mut view = build(&db);
        assert_eq!(view.len(), 7);
        let deletion = ConstrainedAtom::new(
            "P",
            vec![xv.clone(), yv.clone()],
            Constraint::eq(xv.clone(), Term::str("c")).and(Constraint::eq(yv, Term::str("d"))),
        );
        let stats =
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
        // P(c,d), A(c,d) and the recursive A(a,d) all die.
        assert_eq!(stats.removed, 3);
        assert_eq!(view.len(), 4);
        let inst = view
            .instances(&NoDomains, &SolverConfig::default())
            .unwrap();
        let tuples: Vec<_> = inst.iter().map(|(p, t)| format!("{p}{t:?}")).collect();
        assert_eq!(tuples.len(), 4);
        assert!(!tuples.iter().any(|t| t.contains("\"d\"")));
    }

    #[test]
    fn deleting_one_instance_keeps_the_rest() {
        // Example 3 flavour: ground facts; delete one person.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "seenwith",
                vec![Term::str("don"), Term::str("john")],
                Constraint::truth(),
            ),
            Clause::fact(
                "seenwith",
                vec![Term::str("don"), Term::str("ed")],
                Constraint::truth(),
            ),
            Clause::new(
                "swlndc",
                vec![Term::var(Var(0)), Term::var(Var(1))],
                Constraint::truth(),
                vec![BodyAtom::new(
                    "seenwith",
                    vec![Term::var(Var(0)), Term::var(Var(1))],
                )],
            ),
        ]);
        let mut view = build(&db);
        assert_eq!(view.len(), 4);
        let deletion =
            ConstrainedAtom::fact("seenwith", vec![Value::str("don"), Value::str("john")]);
        let stats =
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
        // seenwith(don, john) and swlndc(don, john) are deleted — the
        // two-atom P_OUT of Example 3.
        assert_eq!(stats.removed, 2);
        let inst = view
            .instances(&NoDomains, &SolverConfig::default())
            .unwrap();
        assert_eq!(inst.len(), 2);
        assert!(inst.iter().all(|(_, t)| t[1] == Value::str("ed")));
    }

    #[test]
    fn deleting_absent_instances_is_noop() {
        let db = example5_db();
        let mut view = build(&db);
        let before = rendered(&view);
        let deletion = ConstrainedAtom::new(
            "B",
            vec![x()],
            Constraint::eq(x(), Term::int(2)), // outside X >= 5
        );
        let stats =
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
        assert_eq!(stats.direct_replacements, 0);
        assert_eq!(rendered(&view), before);
    }

    #[test]
    fn unknown_predicate_is_noop() {
        let db = example5_db();
        let mut view = build(&db);
        let deletion = ConstrainedAtom::fact("zzz", vec![Value::int(1)]);
        let stats =
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()).unwrap();
        assert_eq!(stats.pout_pairs, 0);
    }

    #[test]
    fn plain_view_rejected() {
        let db = example5_db();
        let mut view = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0;
        let deletion = ConstrainedAtom::fact("B", vec![Value::int(1)]);
        assert_eq!(
            stdel_delete(&mut view, &deletion, &NoDomains, &SolverConfig::default()),
            Err(StDelError::NeedsSupports)
        );
    }

    #[test]
    fn repeated_deletions_compose() {
        let db = example5_db();
        let mut view = build(&db);
        let cfg = SolverConfig::default();
        for k in [6, 7, 8] {
            let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(k)));
            stdel_delete(&mut view, &deletion, &NoDomains, &cfg).unwrap();
        }
        // B is now X >= 5 minus {6, 7, 8}.
        let hits = view
            .query("B", &[Some(Value::int(7))], &NoDomains, &cfg)
            .unwrap();
        assert!(hits.is_empty());
        let keeps = view
            .query("B", &[Some(Value::int(9))], &NoDomains, &cfg)
            .unwrap();
        assert_eq!(keeps.len(), 1);
        // And C (derived through A through B) lost them as well; C keeps
        // 7 only via the independent A(X) <- X >= 3 entry.
        let c7 = view
            .query("C", &[Some(Value::int(7))], &NoDomains, &cfg)
            .unwrap();
        assert_eq!(c7.len(), 1);
        let c4 = view
            .query("C", &[Some(Value::int(4))], &NoDomains, &cfg)
            .unwrap();
        assert_eq!(c4.len(), 1);
    }
}
