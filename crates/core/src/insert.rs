//! Constrained-atom insertion — Algorithm 3 of the paper (§3.2).
//!
//! To insert `A(X⃗) ← φ` into a materialized view `M`:
//!
//! 1. Build `Add`: the instances of φ *not already in* `M` (each existing
//!    entry's constraint, tied to the insertion's arguments, is negated
//!    and conjoined — the paper's `not(ψ) ∧ φ`).
//! 2. Materialize `Add` as a new entry (with an external-insertion
//!    support ticket, so StDel keeps working afterwards).
//! 3. Unfold `P_ADD`: propagate the insertion upward through the clauses
//!    semi-naively (at least one body child from the previous layer —
//!    note the contrast with `P_OUT`, which requires *exactly* one).
//!
//! Step 3 reuses the fixpoint engine's semi-naive propagation with the
//! new entry as the initial delta, which is precisely the `P_ADD`
//! construction.

use crate::atom::ConstrainedAtom;
use crate::program::ConstrainedDatabase;
use crate::support::{Producer, Support};
use crate::tp::{propagate, FixpointConfig, FixpointError, FixpointStats, Operator};
use crate::view::{EntryId, MaterializedView, SupportMode};
use mmv_constraints::{satisfiable_with, DomainResolver, Lit, Truth};

/// Statistics of one insertion run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InsertStats {
    /// Whether a new base entry was added (false: all instances already
    /// present).
    pub added: bool,
    /// Entries derived by upward propagation (`P_ADD` beyond `Add`).
    pub propagated: usize,
    /// Fixpoint statistics of the propagation.
    pub fixpoint: FixpointStats,
}

/// Statistics of one batched insertion run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InsertBatchStats {
    /// Base `Add` entries materialized (≤ the number of requests; a
    /// request whose instances are all present adds nothing).
    pub added: usize,
    /// Entries derived by upward propagation (`P_ADD` beyond the adds).
    pub propagated: usize,
    /// Fixpoint statistics of the (single) propagation pass.
    pub fixpoint: FixpointStats,
}

impl InsertBatchStats {
    /// Accumulates another run's counters (used when a batch is split
    /// across independent shards and each part reports separately).
    pub fn absorb(&mut self, o: &InsertBatchStats) {
        self.added += o.added;
        self.propagated += o.propagated;
        self.fixpoint.absorb(&o.fixpoint);
    }
}

/// Inserts `[insertion]`'s instances into the view (Algorithm 3),
/// propagating consequences through `db`'s clauses. `op` selects the
/// admission semantics (`T_P` checks solvability of derived constraints;
/// `W_P` admits everything), matching how the view was built.
pub fn insert_atom(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    insertion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    op: Operator,
    config: &FixpointConfig,
) -> Result<InsertStats, FixpointError> {
    let batch = insert_batch(
        db,
        view,
        std::slice::from_ref(insertion),
        resolver,
        op,
        config,
    )?;
    Ok(InsertStats {
        added: batch.added > 0,
        propagated: batch.propagated,
        fixpoint: batch.fixpoint,
    })
}

/// Inserts a whole *set* of insertion requests in one maintenance pass
/// (Algorithm 3 over the set).
///
/// Each request's `Add` entry is built in order against the current view
/// — so later requests exclude the regions covered by earlier requests
/// in the same batch, exactly as sequential insertion would — but the
/// semi-naive `P_ADD` propagation runs *once*, seeded with every new
/// base entry. Sequential insertion pays a full propagation fixpoint
/// (with its per-round index and bookkeeping work) per request; the
/// batch pays it once.
pub fn insert_batch(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    insertions: &[ConstrainedAtom],
    resolver: &dyn DomainResolver,
    op: Operator,
    config: &FixpointConfig,
) -> Result<InsertBatchStats, FixpointError> {
    // One ticket per *request*, drawn upfront — so the ticket sequence
    // depends only on the request sequence, never on which requests turn
    // out to be no-ops. That is what lets a sharded writer reserve a
    // batch's tickets globally and hand each shard its subsequence (see
    // `insert_batch_ticketed`) while staying syntactically equal to the
    // single-lane run.
    let tickets: Vec<u64> = insertions
        .iter()
        .map(|_| view.fresh_external_ticket())
        .collect();
    insert_batch_ticketed(db, view, insertions, &tickets, resolver, op, config)
}

/// [`insert_batch`] with caller-chosen external-insertion tickets, one
/// per request (`tickets.len() == insertions.len()`). The caller is
/// responsible for ticket uniqueness across the view's lifetime; the
/// `mmv-service` sharded writer reserves a contiguous global range per
/// batch and routes each shard the positions its insertions held in the
/// original batch, so a split batch issues exactly the tickets the
/// unsplit batch would.
pub fn insert_batch_ticketed(
    db: &ConstrainedDatabase,
    view: &mut MaterializedView,
    insertions: &[ConstrainedAtom],
    tickets: &[u64],
    resolver: &dyn DomainResolver,
    op: Operator,
    config: &FixpointConfig,
) -> Result<InsertBatchStats, FixpointError> {
    assert_eq!(
        insertions.len(),
        tickets.len(),
        "one ticket per insertion request"
    );
    let mut stats = InsertBatchStats::default();
    let mut new_ids: Vec<EntryId> = Vec::with_capacity(insertions.len());
    for (insertion, &ticket) in insertions.iter().zip(tickets) {
        if let Some(id) = materialize_add(view, insertion, ticket, resolver, config) {
            new_ids.push(id);
            stats.added += 1;
        }
    }
    if new_ids.is_empty() {
        return Ok(stats);
    }

    // ---- P_ADD: one semi-naive upward propagation for the whole batch ----
    let before = view.len();
    let mut fstats = FixpointStats::default();
    propagate(db, resolver, op, view, new_ids, config, &mut fstats)?;
    stats.propagated = view.len() - before;
    stats.fixpoint = fstats;
    Ok(stats)
}

/// Builds and materializes one request's `Add` entry: the instances of
/// the insertion *not already in* the view (steps 1–2 of Algorithm 3).
/// Returns the new entry's id, or `None` if every instance is present.
fn materialize_add(
    view: &mut MaterializedView,
    insertion: &ConstrainedAtom,
    ticket: u64,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Option<EntryId> {
    // ---- Build Add: φ ∧ ⋀ not(ψ_existing) -------------------------------
    // The var gen leaves the view while existing entries stay borrowed
    // (see `tp::propagate`), so no entry atom is cloned here.
    let mut gen = std::mem::take(view.var_gen_mut());
    // Standardize the insertion apart from the view's variables first.
    let ins = insertion.rename(&mut gen);
    let mut add_constraint = ins.constraint.clone();
    for &id in view.entries_for_pred(&ins.pred) {
        let entry_atom = &view.entry(id).atom;
        if entry_atom.args.len() != ins.args.len() {
            continue;
        }
        let epsi = entry_atom
            .constraint_at(&ins.args, &mut gen)
            .expect("arity checked");
        // Excluding a region disjoint from the insertion excludes
        // nothing: skip it. This keeps Add small — conjoining a not()
        // per view entry would make the constraint (and every
        // downstream P_ADD derivation) grow with the view.
        let overlap = ins.constraint.clone().and(epsi.clone());
        if satisfiable_with(&overlap, resolver, &config.solver) == Truth::Unsat {
            continue;
        }
        add_constraint = add_constraint.and_lit(Lit::Not(epsi));
    }
    *view.var_gen_mut() = gen;
    // Solvability gate: nothing new to insert if Add is unsolvable.
    if satisfiable_with(&add_constraint, resolver, &config.solver) == Truth::Unsat {
        return None;
    }
    let add_constraint = mmv_constraints::simplify(&add_constraint).into_constraint()?;
    let add_atom = ConstrainedAtom {
        pred: ins.pred.clone(),
        args: ins.args.clone(),
        constraint: add_constraint,
    };

    // ---- Materialize Add --------------------------------------------------
    let support = match view.mode() {
        SupportMode::WithSupports => Some(Support::leaf(Producer::External(ticket))),
        SupportMode::Plain => None,
    };
    // `None`: canonically identical entry already present (Plain mode).
    view.insert(add_atom, support, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BodyAtom, Clause};
    use crate::tp::fixpoint;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, SolverConfig, Term, Value, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn law_db() -> ConstrainedDatabase {
        // seenwith facts; swlndc(X, Y) <- seenwith(X, Y); suspect <- swlndc.
        let (v0, v1) = (Term::var(Var(0)), Term::var(Var(1)));
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "seenwith",
                vec![Term::str("don"), Term::str("ed")],
                Constraint::truth(),
            ),
            Clause::new(
                "swlndc",
                vec![v0.clone(), v1.clone()],
                Constraint::truth(),
                vec![BodyAtom::new("seenwith", vec![v0.clone(), v1.clone()])],
            ),
            Clause::new(
                "suspect",
                vec![v1.clone()],
                Constraint::truth(),
                vec![BodyAtom::new("swlndc", vec![v0.clone(), v1.clone()])],
            ),
        ])
    }

    fn build(db: &ConstrainedDatabase, mode: SupportMode) -> MaterializedView {
        fixpoint(
            db,
            &NoDomains,
            Operator::Tp,
            mode,
            &FixpointConfig::default(),
        )
        .unwrap()
        .0
    }

    #[test]
    fn paper_style_insertion_propagates_upward() {
        // The paper's motivating case: insert seenwith("don", "jane")
        // even though no clause derives it (a policeman reported it).
        let db = law_db();
        let mut view = build(&db, SupportMode::WithSupports);
        assert_eq!(view.len(), 3);
        let ins = ConstrainedAtom::fact("seenwith", vec![Value::str("don"), Value::str("jane")]);
        let stats = insert_atom(
            &db,
            &mut view,
            &ins,
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert!(stats.added);
        // swlndc(don, jane) and suspect(jane) derived.
        assert_eq!(stats.propagated, 2);
        let cfg = SolverConfig::default();
        assert_eq!(
            view.query("suspect", &[Some(Value::str("jane"))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn duplicate_insertion_is_noop() {
        let db = law_db();
        let mut view = build(&db, SupportMode::WithSupports);
        let ins = ConstrainedAtom::fact("seenwith", vec![Value::str("don"), Value::str("ed")]);
        let stats = insert_atom(
            &db,
            &mut view,
            &ins,
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert!(!stats.added);
        assert_eq!(view.len(), 3);
    }

    #[test]
    fn partial_overlap_inserts_only_difference() {
        // B(X) <- 0 <= X <= 5 in the view; insert B(X) <- 3 <= X <= 8:
        // Add is 3..8 minus 0..5 = 6..8.
        let db = ConstrainedDatabase::from_clauses(vec![Clause::fact(
            "B",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(5),
            )),
        )]);
        let mut view = build(&db, SupportMode::WithSupports);
        let ins = ConstrainedAtom::new(
            "B",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(3)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(8),
            )),
        );
        insert_atom(
            &db,
            &mut view,
            &ins,
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        let inst = view.instances(&NoDomains, &cfg).unwrap();
        // Union must be exactly 0..8.
        assert_eq!(inst.len(), 9);
        // The new entry covers only 6..8 (the difference).
        let added = view
            .live_entries()
            .find(|(_, e)| {
                matches!(
                    e.support.as_ref().map(|s| s.producer()),
                    Some(Producer::External(_))
                )
            })
            .expect("inserted entry");
        let added_inst = added.1.atom.instances(&NoDomains, &cfg);
        let tuples = match added_inst {
            crate::atom::Instances::Exact(t) => t,
            other => panic!("expected exact instances, got {other:?}"),
        };
        assert_eq!(
            tuples.into_iter().collect::<Vec<_>>(),
            vec![
                vec![Value::int(6)],
                vec![Value::int(7)],
                vec![Value::int(8)]
            ]
        );
    }

    #[test]
    fn insertion_matches_declarative_oracle() {
        // [M ∪ P_ADD] must equal [T_{P ∪ Add} ↑ ω (∅)] (Theorem 3's
        // instance-level reading).
        let db = law_db();
        let mut view = build(&db, SupportMode::Plain);
        let ins = ConstrainedAtom::fact("seenwith", vec![Value::str("don"), Value::str("jane")]);
        insert_atom(
            &db,
            &mut view,
            &ins,
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();

        let mut oracle_db = db.clone();
        oracle_db.push(Clause::fact(
            "seenwith",
            vec![Term::str("don"), Term::str("jane")],
            Constraint::truth(),
        ));
        let (oracle, _) = fixpoint(
            &oracle_db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        assert_eq!(
            view.instances(&NoDomains, &cfg).unwrap(),
            oracle.instances(&NoDomains, &cfg).unwrap()
        );
    }

    #[test]
    fn insert_then_stdel_roundtrip() {
        // Supports issued for insertions keep StDel functional.
        let db = law_db();
        let mut view = build(&db, SupportMode::WithSupports);
        let ins = ConstrainedAtom::fact("seenwith", vec![Value::str("don"), Value::str("jane")]);
        insert_atom(
            &db,
            &mut view,
            &ins,
            &NoDomains,
            Operator::Tp,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = SolverConfig::default();
        assert_eq!(
            view.query("suspect", &[Some(Value::str("jane"))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
        crate::delete_stdel::stdel_delete(&mut view, &ins, &NoDomains, &cfg).unwrap();
        assert!(view
            .query("suspect", &[Some(Value::str("jane"))], &NoDomains, &cfg)
            .unwrap()
            .is_empty());
        // The other suspect (ed) is untouched.
        assert_eq!(
            view.query("suspect", &[Some(Value::str("ed"))], &NoDomains, &cfg)
                .unwrap()
                .len(),
            1
        );
    }
}
