//! Equality propagation: the normalization that keeps derived constraints
//! small.
//!
//! `T_P` manufactures constraints of the form
//! `φ0 ∧ φ1 ∧ … ∧ {X⃗1 = t⃗1} ∧ … ∧ {X⃗ = t⃗0}` — chains of variable
//! aliases that compound exponentially through deep derivations. The
//! paper's worked examples always display the *simplified* forms
//! (`A(X) ← X ≤ 5`, not `A(X) ← X = X' ∧ X' ≤ 5`); this module performs
//! that rewrite: solve the top-level variable/variable and
//! variable/constant equalities by substitution, then clean up with
//! [`mmv_constraints::simplify`](fn@mmv_constraints::simplify).
//!
//! The rewrite is time-independent (it never consults a resolver), so it
//! is safe for `W_P` views, whose syntactic stability across external
//! updates (Theorem 4) must not be disturbed.

use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{simplify, Constraint, Lit, Simplified, Subst, Term, Value, Var};

/// The constraint is false by pure syntax (e.g. `X = 1 ∧ X = 2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntacticallyFalse;

/// Union-find over variables with optional constant bindings.
#[derive(Default)]
struct VarClasses {
    parent: FxHashMap<Var, Var>,
    binding: FxHashMap<Var, Value>,
}

impl VarClasses {
    fn find(&mut self, v: Var) -> Var {
        let mut root = v;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = v;
        while cur != root {
            let next = self.parent.insert(cur, root).unwrap_or(root);
            cur = next;
        }
        root
    }

    fn union(&mut self, a: Var, b: Var) -> Result<(), SyntacticallyFalse> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(());
        }
        match (
            self.binding.get(&ra).cloned(),
            self.binding.get(&rb).cloned(),
        ) {
            (Some(x), Some(y)) if x != y => return Err(SyntacticallyFalse),
            (None, Some(y)) => {
                self.binding.insert(ra, y);
            }
            _ => {}
        }
        self.parent.insert(rb, ra);
        Ok(())
    }

    fn bind(&mut self, v: Var, c: Value) -> Result<(), SyntacticallyFalse> {
        let r = self.find(v);
        match self.binding.get(&r) {
            Some(existing) if *existing != c => Err(SyntacticallyFalse),
            _ => {
                self.binding.insert(r, c);
                Ok(())
            }
        }
    }
}

/// Computes the substitution induced by the top-level equalities of `c`,
/// choosing, per class, the earliest variable of `occurrence_order` (then
/// any class member) as representative — or the bound constant.
pub fn equality_subst(
    c: &Constraint,
    occurrence_order: &[Var],
) -> Result<Subst, SyntacticallyFalse> {
    let mut classes = VarClasses::default();
    for lit in &c.lits {
        if let Lit::Eq(a, b) = lit {
            match (a, b) {
                (Term::Var(x), Term::Var(y)) => classes.union(*x, *y)?,
                (Term::Var(x), Term::Const(v)) | (Term::Const(v), Term::Var(x)) => {
                    classes.bind(*x, v.clone())?
                }
                (Term::Const(u), Term::Const(v)) if u != v => {
                    return Err(SyntacticallyFalse);
                }
                // Field terms are left to the full solver.
                _ => {}
            }
        }
    }
    // Rank variables by the caller's preferred order.
    let rank: FxHashMap<Var, usize> = occurrence_order
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, i))
        .collect();
    // Choose representatives.
    let mut all_vars: Vec<Var> = c.free_vars();
    for v in occurrence_order {
        if !all_vars.contains(v) {
            all_vars.push(*v);
        }
    }
    let mut rep_of: FxHashMap<Var, Var> = FxHashMap::default();
    for &v in &all_vars {
        let r = classes.find(v);
        let entry = rep_of.entry(r).or_insert(v);
        let better = match (rank.get(&v), rank.get(entry)) {
            (Some(a), Some(b)) => a < b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => v < *entry,
        };
        if better {
            *entry = v;
        }
    }
    let mut subst = Subst::new();
    for &v in &all_vars {
        let r = classes.find(v);
        if let Some(value) = classes.binding.get(&r) {
            subst.bind(v, Term::Const(value.clone()));
        } else {
            let rep = rep_of[&r];
            if rep != v {
                subst.bind(v, Term::Var(rep));
            }
        }
    }
    Ok(subst)
}

/// Normalizes a constraint: equality substitution, then syntactic
/// simplification. `Err(SyntacticallyFalse)` means the constraint has no
/// solutions at any time point.
pub fn normalize(
    c: &Constraint,
    occurrence_order: &[Var],
) -> Result<(Subst, Constraint), SyntacticallyFalse> {
    let subst = equality_subst(c, occurrence_order)?;
    let substituted = c.substitute(&subst);
    match simplify(&substituted) {
        Simplified::Unsat => Err(SyntacticallyFalse),
        Simplified::Constraint(out) => Ok((subst, out)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::CmpOp;

    fn v(i: u32) -> Var {
        Var(i)
    }
    fn t(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn alias_chain_collapses() {
        // X0 = X1 & X1 = X2 & X2 <= 5  ==>  X0 <= 5 (rep = X0).
        let c = Constraint::eq(t(0), t(1))
            .and(Constraint::eq(t(1), t(2)))
            .and(Constraint::cmp(t(2), CmpOp::Le, Term::int(5)));
        let (_, out) = normalize(&c, &[v(0)]).unwrap();
        assert_eq!(out, Constraint::cmp(t(0), CmpOp::Le, Term::int(5)));
    }

    #[test]
    fn constant_binding_substitutes() {
        // X0 = 3 & X1 = X0 & X1 != 4 ==> true (3 != 4 folds away).
        let c = Constraint::eq(t(0), Term::int(3))
            .and(Constraint::eq(t(1), t(0)))
            .and(Constraint::neq(t(1), Term::int(4)));
        let (subst, out) = normalize(&c, &[v(0)]).unwrap();
        assert!(out.is_truth());
        assert_eq!(subst.get(v(0)), Some(&Term::int(3)));
        assert_eq!(subst.get(v(1)), Some(&Term::int(3)));
    }

    #[test]
    fn conflicting_constants_are_false() {
        let c = Constraint::eq(t(0), Term::int(1)).and(Constraint::eq(t(0), Term::int(2)));
        assert!(normalize(&c, &[]).is_err());
    }

    #[test]
    fn preferred_representative_wins() {
        // Prefer X5 as representative.
        let c = Constraint::eq(t(0), t(5)).and(Constraint::cmp(t(0), CmpOp::Ge, Term::int(1)));
        let (_, out) = normalize(&c, &[v(5)]).unwrap();
        assert_eq!(out, Constraint::cmp(t(5), CmpOp::Ge, Term::int(1)));
    }

    #[test]
    fn substitution_reaches_inside_not() {
        // X0 = 6 & not(X1 = X0) with X1 = X0 at top level... instead:
        // X0 = X1 & not(X1 = 6) ==> not(X0 = 6) ==> X0 != 6.
        let c = Constraint::eq(t(0), t(1)).and_lit(Lit::Not(Constraint::eq(t(1), Term::int(6))));
        let (_, out) = normalize(&c, &[v(0)]).unwrap();
        assert_eq!(out, Constraint::neq(t(0), Term::int(6)));
    }

    #[test]
    fn equalities_to_field_terms_survive() {
        let field = Term::field(t(2), "name");
        let c = Constraint::eq(t(0), field.clone()).and(Constraint::eq(t(0), t(1)));
        let (_, out) = normalize(&c, &[v(0)]).unwrap();
        // X0 = X2.name survives; alias X1 collapsed.
        assert_eq!(out, Constraint::eq(t(0), field));
    }

    #[test]
    fn example5_replacement_normalizes() {
        // From the paper's Example 5: X <= 5 & not(X <= 5 & X = 6)
        // normalizes to X <= 5 & X != 6.
        let inner =
            Constraint::cmp(t(0), CmpOp::Le, Term::int(5)).and(Constraint::eq(t(0), Term::int(6)));
        let c = Constraint::cmp(t(0), CmpOp::Le, Term::int(5)).and_lit(Lit::Not(inner));
        let (_, out) = normalize(&c, &[v(0)]).unwrap();
        assert_eq!(
            out,
            Constraint::cmp(t(0), CmpOp::Le, Term::int(5)).and(Constraint::neq(t(0), Term::int(6)))
        );
    }
}
