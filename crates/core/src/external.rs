//! Maintenance under *external* change — Section 4 of the paper.
//!
//! When an integrated domain changes (a PARADOX table is updated, the
//! surveillance photo set grows), the behaviour of the functions behind
//! `in(·,·)` changes from `f_t` to `f_{t+1}`. The paper contrasts two
//! regimes:
//!
//! * **`T_P` materialization**: derived atoms were admitted based on
//!   solvability *at build time*, so the view is stale after the change
//!   and must be recomputed ([`MaintenanceStrategy::TpRecompute`]).
//! * **`W_P` materialization**: no solvability filtering ever happened,
//!   so the view is a time-independent syntactic object; *no maintenance
//!   action whatsoever* is required (Theorem 4), and querying it at time
//!   `t` yields exactly the instances of the `T_P` view built at `t`
//!   (Corollary 1). This is [`MaintenanceStrategy::WpDeferred`].
//!
//! [`MediatedMaterializedView`] packages a constrained database, a
//! strategy and the current view, exposing the maintenance hook that
//! experiments E4/E7 measure.

use crate::atom::ConstrainedAtom;
use crate::delete_stdel::{stdel_delete, StDelError, StDelStats};
use crate::insert::{insert_atom, InsertStats};
use crate::program::ConstrainedDatabase;
use crate::tp::{fixpoint, FixpointConfig, FixpointError, Operator};
use crate::view::{InstanceError, MaterializedView, SupportMode};
use mmv_constraints::{DomainResolver, SolverConfig, Value};
use std::collections::BTreeSet;

/// How the view reacts to external domain changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// Materialize with `T_P`; recompute the fixpoint whenever a domain
    /// changes.
    TpRecompute,
    /// Materialize with `W_P`; never touch the view, evaluate constraints
    /// at query time.
    WpDeferred,
}

impl MaintenanceStrategy {
    /// The fixpoint operator this strategy materializes with.
    pub fn operator(self) -> Operator {
        match self {
            MaintenanceStrategy::TpRecompute => Operator::Tp,
            MaintenanceStrategy::WpDeferred => Operator::Wp,
        }
    }
}

/// What [`MediatedMaterializedView::on_external_change`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceAction {
    /// The view was rebuilt from scratch (`T_P` strategy).
    Recomputed,
    /// Nothing needed to happen (`W_P` strategy, or the clock did not
    /// move).
    NoActionNeeded,
}

/// A materialized mediated view bundled with its database and strategy.
pub struct MediatedMaterializedView {
    db: ConstrainedDatabase,
    strategy: MaintenanceStrategy,
    config: FixpointConfig,
    view: MaterializedView,
    /// The external clock value the view was last (re)built at.
    built_at: u64,
}

impl MediatedMaterializedView {
    /// Materializes the view of `db` under `strategy`. `clock` is the
    /// current external logical time (e.g.
    /// `mmv_domains::DomainManager::clock`).
    pub fn materialize(
        db: ConstrainedDatabase,
        strategy: MaintenanceStrategy,
        resolver: &dyn DomainResolver,
        clock: u64,
        config: FixpointConfig,
    ) -> Result<Self, FixpointError> {
        let (view, _) = fixpoint(
            &db,
            resolver,
            strategy.operator(),
            SupportMode::WithSupports,
            &config,
        )?;
        Ok(MediatedMaterializedView {
            db,
            strategy,
            config,
            view,
            built_at: clock,
        })
    }

    /// The underlying view.
    pub fn view(&self) -> &MaterializedView {
        &self.view
    }

    /// The database defining the view.
    pub fn database(&self) -> &ConstrainedDatabase {
        &self.db
    }

    /// The strategy in force.
    pub fn strategy(&self) -> MaintenanceStrategy {
        self.strategy
    }

    /// The maintenance hook: call after external domains may have
    /// changed. Under `W_P` this never does anything — the paper's
    /// headline result.
    pub fn on_external_change(
        &mut self,
        resolver: &dyn DomainResolver,
        clock: u64,
    ) -> Result<MaintenanceAction, FixpointError> {
        if clock == self.built_at {
            return Ok(MaintenanceAction::NoActionNeeded);
        }
        match self.strategy {
            MaintenanceStrategy::WpDeferred => {
                // Theorem 4: the view is syntactically time-invariant.
                self.built_at = clock;
                Ok(MaintenanceAction::NoActionNeeded)
            }
            MaintenanceStrategy::TpRecompute => {
                let (view, _) = fixpoint(
                    &self.db,
                    resolver,
                    Operator::Tp,
                    SupportMode::WithSupports,
                    &self.config,
                )?;
                self.view = view;
                self.built_at = clock;
                Ok(MaintenanceAction::Recomputed)
            }
        }
    }

    /// Queries `pred(pattern)` against the view, evaluating constraints
    /// at the resolver's *current* state (the `W_P` query-time
    /// semantics; for `T_P` views this matches build-time state as long
    /// as maintenance was run).
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        solver: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.view.query(pred, pattern, resolver, solver)
    }

    /// View-update deletion (Algorithm 2, StDel).
    pub fn delete(
        &mut self,
        deletion: &ConstrainedAtom,
        resolver: &dyn DomainResolver,
    ) -> Result<StDelStats, StDelError> {
        stdel_delete(&mut self.view, deletion, resolver, &self.config.solver)
    }

    /// View-update insertion (Algorithm 3).
    pub fn insert(
        &mut self,
        insertion: &ConstrainedAtom,
        resolver: &dyn DomainResolver,
    ) -> Result<InsertStats, FixpointError> {
        insert_atom(
            &self.db,
            &mut self.view,
            insertion,
            resolver,
            self.strategy.operator(),
            &self.config,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Clause;
    use mmv_constraints::{Call, Constraint, Term, Var};
    use mmv_domains::{DomainManager, FacePackage};
    use std::sync::Arc;

    /// Example 8's single-rule database:
    ///   A(X) <- in(X, faces:findface(Y)) || B(X, Y)-ish — modelled here
    /// with the face package: match(F) <- in(F, facextract:segmentface("sv")).
    fn face_db() -> ConstrainedDatabase {
        let f = Term::var(Var(0));
        ConstrainedDatabase::from_clauses(vec![Clause::fact(
            "extracted",
            vec![f.clone()],
            Constraint::member(
                f,
                Call::new("facextract", "segmentface", vec![Term::str("sv")]),
            ),
        )])
    }

    fn manager(pkg: &FacePackage) -> DomainManager {
        let mut m = DomainManager::new();
        m.register(Arc::new(pkg.extract_domain()));
        m.register(Arc::new(pkg.db_domain()));
        m
    }

    #[test]
    fn theorem_4_wp_view_is_syntactically_invariant() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[1]);
        let m = manager(&pkg);
        let mut mv = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::WpDeferred,
            &m,
            m.clock(),
            FixpointConfig::default(),
        )
        .unwrap();
        let before = mv.view().compact();
        // External change: the photo set grows.
        pkg.add_photo("sv", "img2", &[2]);
        let action = mv.on_external_change(&m, m.clock()).unwrap();
        assert_eq!(action, MaintenanceAction::NoActionNeeded);
        assert!(mv.view().syntactically_equal(&before));
        // Rebuilding from scratch under W_P also yields the same syntax.
        let rebuilt = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::WpDeferred,
            &m,
            m.clock(),
            FixpointConfig::default(),
        )
        .unwrap();
        assert!(rebuilt.view().syntactically_equal(&before));
    }

    #[test]
    fn corollary_1_wp_instances_track_tp_at_every_time() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[1]);
        let m = manager(&pkg);
        let cfg = FixpointConfig::default();
        let wp = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::WpDeferred,
            &m,
            m.clock(),
            cfg.clone(),
        )
        .unwrap();

        for step in 0..4u64 {
            if step > 0 {
                pkg.add_photo("sv", &format!("img{}", step + 1), &[step]);
            }
            // T_P view built right now.
            let tp = MediatedMaterializedView::materialize(
                face_db(),
                MaintenanceStrategy::TpRecompute,
                &m,
                m.clock(),
                cfg.clone(),
            )
            .unwrap();
            let wp_inst = wp.view().instances(&m, &cfg.solver).unwrap();
            let tp_inst = tp.view().instances(&m, &cfg.solver).unwrap();
            assert_eq!(wp_inst, tp_inst, "instances diverged at step {step}");
        }
    }

    #[test]
    fn tp_strategy_recomputes_wp_does_not() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[1]);
        let m = manager(&pkg);
        let mut tp = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::TpRecompute,
            &m,
            m.clock(),
            FixpointConfig::default(),
        )
        .unwrap();
        let mut wp = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::WpDeferred,
            &m,
            m.clock(),
            FixpointConfig::default(),
        )
        .unwrap();
        pkg.add_photo("sv", "img2", &[9]);
        assert_eq!(
            tp.on_external_change(&m, m.clock()).unwrap(),
            MaintenanceAction::Recomputed
        );
        assert_eq!(
            wp.on_external_change(&m, m.clock()).unwrap(),
            MaintenanceAction::NoActionNeeded
        );
        // Both answer the new query correctly.
        let scfg = SolverConfig::default();
        let tp_ans = tp.query("extracted", &[None], &m, &scfg).unwrap();
        let wp_ans = wp.query("extracted", &[None], &m, &scfg).unwrap();
        assert_eq!(tp_ans, wp_ans);
        assert_eq!(tp_ans.len(), 2);
    }

    #[test]
    fn unchanged_clock_is_noop_for_both() {
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "img1", &[1]);
        let m = manager(&pkg);
        let mut tp = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::TpRecompute,
            &m,
            m.clock(),
            FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(
            tp.on_external_change(&m, m.clock()).unwrap(),
            MaintenanceAction::NoActionNeeded
        );
    }

    #[test]
    fn example_7_removal_under_wp() {
        // Example 7: g(b) goes from {a} to {}: the W_P view keeps the
        // syntactic atom; its instances become empty at query time.
        let pkg = FacePackage::new();
        pkg.add_photo("sv", "only", &[7]);
        let m = manager(&pkg);
        let cfg = FixpointConfig::default();
        let wp = MediatedMaterializedView::materialize(
            face_db(),
            MaintenanceStrategy::WpDeferred,
            &m,
            m.clock(),
            cfg.clone(),
        )
        .unwrap();
        assert_eq!(wp.view().instances(&m, &cfg.solver).unwrap().len(), 1);
        pkg.remove_photo("sv", "only");
        // No maintenance, yet the instances are now empty.
        assert!(wp.view().instances(&m, &cfg.solver).unwrap().is_empty());
        assert_eq!(wp.view().len(), 1, "syntactic entry remains (Theorem 4)");
    }
}
