//! Executable declarative semantics: the oracles of Theorems 1, 2 and 3.
//!
//! The paper specifies what each maintenance algorithm must compute by
//! *rewriting the database* and taking the least model:
//!
//! * deletion of `Del` ⇒ `P'` (clause rewrite (4)):
//!   `[algorithm output] = [T_{P'} ↑ ω (∅)]`,
//! * insertion of `A(X⃗) ← φ` ⇒ `P♭ = P ∪ Add ∪ weakened clauses`; at the
//!   instance level this equals the least model of `P ∪ {A(X⃗) ← φ}`
//!   (the Add-exclusions and clause weakenings only suppress *duplicate
//!   entries*, never instances).
//!
//! These functions recompute from scratch — they are the slow, obviously-
//! correct implementations that the property tests compare the
//! incremental algorithms against, and the "full recomputation" baseline
//! of the benchmarks.

use crate::atom::ConstrainedAtom;
use crate::batch::UpdateBatch;
use crate::delete_dred::rewrite_for_deletion;
use crate::program::{Clause, ConstrainedDatabase};
use crate::tp::{fixpoint, FixpointConfig, FixpointError, Operator};
use crate::view::{GroundFact, InstanceError, MaterializedView, SupportMode};
use mmv_constraints::{satisfiable_with, DomainResolver, Truth};
use std::collections::BTreeSet;
use std::fmt;

/// An oracle evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// Fixpoint iteration failed.
    Fixpoint(FixpointError),
    /// Instance materialization failed.
    Instances(InstanceError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Fixpoint(e) => write!(f, "oracle fixpoint: {e}"),
            OracleError::Instances(e) => write!(f, "oracle instances: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<FixpointError> for OracleError {
    fn from(e: FixpointError) -> Self {
        OracleError::Fixpoint(e)
    }
}

impl From<InstanceError> for OracleError {
    fn from(e: InstanceError) -> Self {
        OracleError::Instances(e)
    }
}

/// Builds the `Del` set for a deletion request against a view: the
/// request intersected with each matching view atom (§3.1, "Declarative
/// Semantics of Constrained-Atom Deletion").
pub fn build_del(
    view: &mut MaterializedView,
    deletion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Vec<ConstrainedAtom> {
    let mut del = Vec::new();
    // Borrow entries directly while the var gen is out of the view (see
    // `tp::propagate`) — no entry atom clones.
    let mut gen = std::mem::take(view.var_gen_mut());
    for &id in view.entries_for_pred(&deletion.pred) {
        let atom = &view.entry(id).atom;
        if atom.args.len() != deletion.args.len() {
            continue;
        }
        let dpsi = deletion
            .constraint_at(&atom.args, &mut gen)
            .expect("arity checked");
        let region = atom.constraint.clone().and(dpsi);
        if satisfiable_with(&region, resolver, &config.solver) == Truth::Unsat {
            continue;
        }
        del.push(ConstrainedAtom {
            pred: atom.pred.clone(),
            args: atom.args.clone(),
            constraint: region,
        });
    }
    *view.var_gen_mut() = gen;
    del
}

/// The declarative result of a deletion: `[T_{P'} ↑ ω (∅)]`, computed
/// from scratch. `view` is only used (and not modified logically) to
/// build `Del`; pass the *pre-deletion* view.
pub fn deletion_oracle(
    db: &ConstrainedDatabase,
    view: &MaterializedView,
    deletion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<BTreeSet<GroundFact>, OracleError> {
    let mut scratch = view.clone();
    let del = build_del(&mut scratch, deletion, resolver, config);
    let pprime = rewrite_for_deletion(db, &del);
    let (oracle_view, _) = fixpoint(&pprime, resolver, Operator::Tp, SupportMode::Plain, config)?;
    Ok(oracle_view.instances(resolver, &config.solver)?)
}

/// The declarative result of an [`UpdateBatch`]
/// (deletions-then-insertions): the instances of the least model of
/// `P' ∪ Ins`, where `P'` is the deletion rewrite (4) for the *union*
/// of the batch's `Del` sets and `Ins` holds one fact clause per
/// insertion request. This is the oracle [`crate::batch::apply_batch`]
/// is tested against: batched maintenance must land on the same
/// instance set as the rewritten database's least model.
pub fn batch_oracle(
    db: &ConstrainedDatabase,
    view: &MaterializedView,
    batch: &UpdateBatch,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<BTreeSet<GroundFact>, OracleError> {
    let mut scratch = view.clone();
    let mut del = Vec::new();
    for deletion in &batch.deletes {
        del.extend(build_del(&mut scratch, deletion, resolver, config));
    }
    let mut rewritten = rewrite_for_deletion(db, &del);
    for insertion in &batch.inserts {
        rewritten.push(Clause::fact(
            &insertion.pred,
            insertion.args.clone(),
            insertion.constraint.clone(),
        ));
    }
    let (oracle_view, _) = fixpoint(
        &rewritten,
        resolver,
        Operator::Tp,
        SupportMode::Plain,
        config,
    )?;
    Ok(oracle_view.instances(resolver, &config.solver)?)
}

/// The declarative result of an insertion: `[T_{P♭} ↑ ω (∅)]`, computed
/// from scratch as the least model of `P ∪ {insertion}`.
pub fn insertion_oracle(
    db: &ConstrainedDatabase,
    insertion: &ConstrainedAtom,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<BTreeSet<GroundFact>, OracleError> {
    let mut extended = db.clone();
    extended.push(Clause::fact(
        &insertion.pred,
        insertion.args.clone(),
        insertion.constraint.clone(),
    ));
    let (oracle_view, _) = fixpoint(
        &extended,
        resolver,
        Operator::Tp,
        SupportMode::Plain,
        config,
    )?;
    Ok(oracle_view.instances(resolver, &config.solver)?)
}

/// Full-recomputation baseline: the least model's instances, from
/// scratch (what a system without incremental maintenance pays on every
/// update).
pub fn recompute_instances(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
) -> Result<BTreeSet<GroundFact>, OracleError> {
    let (view, _) = fixpoint(db, resolver, Operator::Tp, SupportMode::Plain, config)?;
    Ok(view.instances(resolver, &config.solver)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delete_stdel::stdel_delete;
    use crate::program::BodyAtom;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn bounded_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(7)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(12),
                )),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    #[test]
    fn stdel_agrees_with_deletion_oracle() {
        let db = bounded_db();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        let deletion = ConstrainedAtom::new(
            "B",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(4)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(8),
            )),
        );
        let cfg = FixpointConfig::default();
        let expected = deletion_oracle(&db, &view, &deletion, &NoDomains, &cfg).unwrap();
        stdel_delete(&mut view, &deletion, &NoDomains, &cfg.solver).unwrap();
        assert_eq!(view.instances(&NoDomains, &cfg.solver).unwrap(), expected);
    }

    #[test]
    fn dred_agrees_with_deletion_oracle() {
        let db = bounded_db();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();
        let deletion = ConstrainedAtom::new("B", vec![x()], Constraint::eq(x(), Term::int(8)));
        let cfg = FixpointConfig::default();
        let expected = deletion_oracle(&db, &view, &deletion, &NoDomains, &cfg).unwrap();
        crate::delete_dred::dred_delete(&db, &mut view, &deletion, &NoDomains, &cfg).unwrap();
        assert_eq!(view.instances(&NoDomains, &cfg.solver).unwrap(), expected);
    }

    #[test]
    fn insertion_agrees_with_oracle() {
        let db = bounded_db();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        let insertion = ConstrainedAtom::new(
            "B",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(20)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(22),
            )),
        );
        let cfg = FixpointConfig::default();
        let expected = insertion_oracle(&db, &insertion, &NoDomains, &cfg).unwrap();
        crate::insert::insert_atom(&db, &mut view, &insertion, &NoDomains, Operator::Tp, &cfg)
            .unwrap();
        assert_eq!(view.instances(&NoDomains, &cfg.solver).unwrap(), expected);
    }

    #[test]
    fn delete_everything_leaves_empty_instances() {
        let db = bounded_db();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        let cfg = FixpointConfig::default();
        for pred in ["C", "A", "B"] {
            let deletion = ConstrainedAtom::new(
                pred,
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(-100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(100),
                )),
            );
            stdel_delete(&mut view, &deletion, &NoDomains, &cfg.solver).unwrap();
        }
        assert!(view.instances(&NoDomains, &cfg.solver).unwrap().is_empty());
    }
}
