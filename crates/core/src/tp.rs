//! The fixpoint operators `T_P` (Gabbrielli–Levi, §2.3) and `W_P` (§4).
//!
//! Both map interpretations (sets of constrained atoms) to
//! interpretations by instantiating clauses with standardized-apart view
//! entries and conjoining the resulting constraints. Their single
//! difference is the paper's central observation: `T_P` requires the
//! combined constraint to be *solvable at evaluation time*, so external
//! domain updates invalidate the view; `W_P` omits the check, making the
//! materialized view a purely syntactic object that never needs
//! maintenance under external change (Theorem 4).
//!
//! Iteration is semi-naive under duplicate semantics: a derivation is new
//! iff its support is new (Lemma 1), so each derivation is constructed at
//! most once.
//!
//! # The indexed join engine
//!
//! Clause bodies are joined against the view through two persistent,
//! incrementally-maintained structures owned by [`MaterializedView`]
//! (updated in `insert`/`remove`, never rebuilt per round):
//!
//! * **per-predicate live lists** — the ids of all live entries of a
//!   predicate, and
//! * a **constant-argument discrimination index** — `(pred, position,
//!   value) → ids` for entries with a constant at that argument position,
//!   plus the complementary "non-constant at that position" list (such
//!   entries can match any value, so every probe unions both).
//!
//! `collect_combos` enumerates the combinations for one `(clause,
//! delta-position)` pair by visiting the delta position first and
//! propagating the constant bindings it implies into
//! [`MaterializedView::probe`] lookups for the remaining positions.
//! Combinations whose constants conflict are skipped before any renaming
//! or constraint construction — exactly the combinations `derive` would
//! reject as syntactically false through its equality union-find, so the
//! view contents are unchanged under both `T_P` and `W_P` (which must
//! keep unsolvable-but-not-syntactically-false atoms).
//!
//! The semi-naive **old/delta/all invariant**: each round freezes the
//! entry-slot watermark and stamps its delta entries with a fresh token
//! (`RoundScope`). Each clause's delta-carrying body positions are
//! ordered by ascending estimated fan-out into a `delta_plan`; the
//! position of rank `k` serves as the delta of one split, in which
//! positions of rank `< k` draw from frozen non-delta entries ("old"),
//! rank `k` from the delta, and every other position from all frozen
//! entries ("all") — so every combination involving at least one delta
//! entry is enumerated exactly once per round, without building
//! per-round `HashSet`s or rescanning the view.
//!
//! # Intra-round parallelism
//!
//! The splits of one round are mutually independent — each enumerates
//! against the frozen round-start state, and a round only inserts — so
//! with [`FixpointConfig::parallel`] set they run as [`WorkerPool`]
//! tasks over a frozen (`Arc`-bump) clone of the view, each with a
//! private variable generator, and the caller thread merges the
//! candidate derivations back *in submission order*: the inserted
//! entries, their ids, supports, and the next round's delta are
//! syntactically identical to the sequential engine's (pinned by the
//! `engine_equivalence` proptest at several pool widths). See
//! `round_parallel` for the full argument.

use crate::atom::ConstrainedAtom;
use crate::normalize::normalize;
use crate::pool::WorkerPool;
use crate::program::{BodyAtom, Clause, ClauseId, ConstrainedDatabase};
use crate::support::{Producer, Support};
use crate::view::{EntryId, MaterializedView, SupportMode};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{
    satisfiable_with, Constraint, DomainResolver, Lit, SolverConfig, Term, Truth, Value, Var,
    VarGen,
};
use std::fmt;
use std::sync::Arc;

/// Which operator to iterate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// Gabbrielli–Levi `T_P`: keep a derived atom only if its constraint
    /// is solvable against the resolver's current state.
    Tp,
    /// The paper's `W_P`: keep every derived atom; satisfiability is
    /// deferred to query time.
    Wp,
}

/// Budgets and knobs for fixpoint iteration.
#[derive(Debug, Clone)]
pub struct FixpointConfig {
    /// Solver budgets for the per-derivation solvability test (`T_P`).
    pub solver: SolverConfig,
    /// Maximum semi-naive rounds before giving up.
    pub max_iterations: usize,
    /// Maximum live view entries before giving up.
    pub max_entries: usize,
    /// Intra-round parallelism: when set (and the pool has more than
    /// one thread), each round's independent `(clause, delta-position)`
    /// splits run as pool tasks over a frozen round-start view, with a
    /// deterministic submission-order merge — see
    /// [the module docs][self#intra-round-parallelism]. `None` (the
    /// default) is the plain sequential engine.
    pub parallel: Option<ParallelFixpoint>,
}

impl Default for FixpointConfig {
    fn default() -> Self {
        FixpointConfig {
            solver: SolverConfig::default(),
            max_iterations: 512,
            max_entries: 1_000_000,
            parallel: None,
        }
    }
}

/// Intra-round parallel execution: a shared [`WorkerPool`] plus an
/// owned, thread-safe handle to the *same* domain resolver the fixpoint
/// is driven with — pool tasks run the `T_P` admission test themselves,
/// so they need a `Send + Sync` resolver they can hold across threads.
/// Callers must pass the resolver this handle wraps as the borrowed
/// resolver argument of [`fixpoint`]/`propagate`; the view service
/// guarantees that by construction.
#[derive(Clone)]
pub struct ParallelFixpoint {
    /// The pool the round's splits are submitted to (shared across
    /// writer lanes).
    pub pool: Arc<WorkerPool>,
    /// The resolver tasks admit derivations against.
    pub resolver: Arc<dyn DomainResolver + Send + Sync>,
}

impl fmt::Debug for ParallelFixpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelFixpoint")
            .field("threads", &self.pool.threads())
            .finish_non_exhaustive()
    }
}

/// Fixpoint iteration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixpointError {
    /// The iteration budget was exhausted (likely a recursive program
    /// with infinitely many derivations — see DESIGN.md §3).
    IterationBudget {
        /// Rounds executed.
        iterations: usize,
    },
    /// The entry budget was exhausted.
    EntryBudget {
        /// Entries materialized.
        entries: usize,
    },
    /// A work-stealing pool task panicked mid-round. The round's merge
    /// never ran, so the view holds exactly the pre-round state; the
    /// pool's workers survive for the next batch. Surfacing this as an
    /// error (instead of re-panicking on the submitting thread) keeps
    /// the caller's locks unpoisoned — the service's normal
    /// rollback-on-error path restores every touched lane.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::IterationBudget { iterations } => {
                write!(
                    f,
                    "fixpoint iteration budget exhausted after {iterations} rounds"
                )
            }
            FixpointError::EntryBudget { entries } => {
                write!(f, "fixpoint entry budget exhausted at {entries} entries")
            }
            FixpointError::WorkerPanic { message } => {
                write!(f, "pool worker panicked mid-round: {message}")
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// Statistics of one fixpoint run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FixpointStats {
    /// Semi-naive rounds executed.
    pub iterations: usize,
    /// Derivations constructed (before dedup/solvability filtering).
    pub derivations_tried: usize,
    /// Derivations discarded by the `T_P` solvability check.
    pub pruned_unsolvable: usize,
    /// Derivations discarded as syntactically false.
    pub pruned_syntactic: usize,
    /// Join-position lookups answered by the constant-argument
    /// discrimination index (as opposed to full per-predicate scans).
    pub index_probes: usize,
    /// Candidate entries scanned across all join-position lookups. A
    /// blind cartesian enumeration scans the full per-predicate lists at
    /// every position; the index keeps this near the number of
    /// derivations that actually exist.
    pub candidates_scanned: usize,
}

impl FixpointStats {
    /// Accumulates another run's counters (used when a batch is split
    /// across independent shards and each part reports separately).
    pub fn absorb(&mut self, o: &FixpointStats) {
        self.iterations += o.iterations;
        self.derivations_tried += o.derivations_tried;
        self.pruned_unsolvable += o.pruned_unsolvable;
        self.pruned_syntactic += o.pruned_syntactic;
        self.index_probes += o.index_probes;
        self.candidates_scanned += o.candidates_scanned;
    }
}

/// A candidate derivation, before filtering.
pub(crate) struct Derivation {
    pub atom: ConstrainedAtom,
    pub children_args: Vec<Vec<Term>>,
}

/// Builds one derivation: `clause` applied to `children` (one per body
/// atom), standardizing everything apart from `gen`. Returns `None` if
/// the combined constraint is syntactically false (which includes arity
/// mismatches and constant conflicts).
///
/// `derive` never constructs supports — the caller assembles one from
/// the children's (`Arc`-shared) supports only when the view tracks
/// them, so plain-mode iteration allocates none at all.
pub(crate) fn derive(
    clause: &Clause,
    children: &[&ConstrainedAtom],
    gen: &mut VarGen,
) -> Option<Derivation> {
    debug_assert_eq!(clause.body.len(), children.len());
    let rc = clause.rename(gen);
    let mut constraint = rc.constraint;
    let mut children_args: Vec<Vec<Term>> = Vec::with_capacity(children.len());
    for (body_atom, child) in rc.body.iter().zip(children) {
        if body_atom.args.len() != child.args.len() {
            return None; // arity mismatch: no derivation
        }
        let mut map = FxHashMap::default();
        let rchild = child.rename_into(&mut map, gen);
        constraint = constraint.and(rchild.constraint);
        for (ca, ba) in rchild.args.iter().zip(&body_atom.args) {
            if ca != ba {
                constraint = constraint.and_lit(Lit::Eq(ca.clone(), ba.clone()));
            }
        }
        children_args.push(rchild.args);
    }
    // Normalize: propagate equalities, preferring head-arg variables as
    // representatives, then simplify.
    let mut order: Vec<Var> = Vec::new();
    for t in &rc.head_args {
        t.collect_vars(&mut order);
    }
    let (subst, constraint) = normalize(&constraint, &order).ok()?;
    let head_args: Vec<Term> = rc.head_args.iter().map(|t| t.substitute(&subst)).collect();
    let children_args = children_args
        .into_iter()
        .map(|args| args.into_iter().map(|t| t.substitute(&subst)).collect())
        .collect();
    Some(Derivation {
        atom: ConstrainedAtom {
            pred: rc.head_pred,
            args: head_args,
            constraint,
        },
        children_args,
    })
}

/// Computes the least fixpoint `op ↑ ω (∅)` of the database.
pub fn fixpoint(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    mode: SupportMode,
    config: &FixpointConfig,
) -> Result<(MaterializedView, FixpointStats), FixpointError> {
    let view = MaterializedView::new(mode, db.fresh_gen());
    fixpoint_seeded(db, resolver, op, view, config)
}

/// Continues fixpoint iteration from an existing interpretation (used by
/// Extended DRed's rederivation `T_{P''} ↑ ω (M')` and by tests).
/// The seed's live entries form the initial delta; clause facts are
/// (re)derived as usual and deduplicated against the seed.
pub fn fixpoint_seeded(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    mut view: MaterializedView,
    config: &FixpointConfig,
) -> Result<(MaterializedView, FixpointStats), FixpointError> {
    let mut stats = FixpointStats::default();
    let mode = view.mode();
    let mut delta: Vec<EntryId> = view.live_entries().map(|(id, _)| id).collect();

    // Round 0: constrained facts (empty-body clauses).
    for (cid, clause) in db.clauses() {
        if !clause.body.is_empty() {
            continue;
        }
        stats.derivations_tried += 1;
        let Some(d) = derive(clause, &[], view.var_gen_mut()) else {
            stats.pruned_syntactic += 1;
            continue;
        };
        if !admit(op, &d.atom.constraint, resolver, config, &mut stats) {
            continue;
        }
        let support =
            matches!(mode, SupportMode::WithSupports).then(|| Support::leaf(Producer::Clause(cid)));
        if let Some(id) = view.insert(d.atom, support, d.children_args) {
            delta.push(id);
        }
    }

    propagate(db, resolver, op, &mut view, delta, config, &mut stats)?;
    Ok((view, stats))
}

/// Freeze of one semi-naive round over a view: only entries below
/// `watermark` (the slot count at round start) participate, and entries
/// stamped with `token` form the round's delta. Stamps persist across
/// rounds; a fresh token per round makes stale stamps inert, so no
/// per-round set is built and no full rescan happens.
///
/// The scope owns its stamp vector behind an `Arc` (cheaply cloned, no
/// borrow of the [`RoundState`]), so a parallel round can hand one copy
/// to every pool task.
#[derive(Clone)]
pub(crate) struct RoundScope {
    /// Per-slot round stamps (slots beyond the vector count as 0).
    stamps: Arc<Vec<u64>>,
    /// The current round's token.
    pub token: u64,
    /// Entry-slot watermark taken at round start.
    pub watermark: usize,
}

impl RoundScope {
    fn in_delta(&self, id: EntryId) -> bool {
        self.stamps.get(id).copied() == Some(self.token)
    }
}

/// Reusable round-freeze state for semi-naive drivers (the fixpoint
/// engine and DRed's rederivation): owns the stamp vector and token
/// counter behind [`RoundScope`], so the freeze mechanics live in one
/// place.
pub(crate) struct RoundState {
    stamps: Arc<Vec<u64>>,
    token: u64,
}

impl RoundState {
    pub fn new() -> Self {
        RoundState {
            stamps: Arc::new(Vec::new()),
            token: 0,
        }
    }

    /// Starts a round: freezes the view's slot watermark and stamps the
    /// delta with a fresh token. (`Arc::make_mut` copies the stamp
    /// vector only if a previous round's tasks still hold it — they
    /// never do: every task completes before its round's merge.)
    pub fn begin(&mut self, view: &MaterializedView, delta: &[EntryId]) -> RoundScope {
        self.token += 1;
        let watermark = view.entry_slots();
        let stamps = Arc::make_mut(&mut self.stamps);
        stamps.resize(watermark, 0);
        for &id in delta {
            stamps[id] = self.token;
        }
        RoundScope {
            stamps: Arc::clone(&self.stamps),
            token: self.token,
            watermark,
        }
    }
}

/// Groups live entry ids by predicate (the per-round delta partition —
/// O(|delta|), never a view rescan).
pub(crate) fn group_by_pred(
    view: &MaterializedView,
    ids: &[EntryId],
) -> FxHashMap<Arc<str>, Vec<EntryId>> {
    let mut out: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
    for &id in ids {
        out.entry(view.entry(id).atom.pred.clone())
            .or_default()
            .push(id);
    }
    out
}

/// What the distinguished (delta) body position of a combination draws
/// from.
pub(crate) enum DeltaSource<'a> {
    /// Ids of this round's delta entries of the position's predicate.
    Entries(&'a [EntryId]),
    /// One external atom not stored in the view (DRed's `P_OUT`
    /// unfolding); combinations carry [`ATOM_SLOT`] at the delta
    /// position.
    Atom(&'a ConstrainedAtom),
}

/// Sentinel id marking the delta position of a [`DeltaSource::Atom`]
/// combination.
pub(crate) const ATOM_SLOT: EntryId = EntryId::MAX;

struct ComboCtx<'a> {
    view: &'a MaterializedView,
    body: &'a [BodyAtom],
    dpos: usize,
    /// Body positions already consumed as the delta by earlier splits of
    /// this round's plan: they draw from the frozen round's *non-delta*
    /// entries ("old"), every other non-delta position from all frozen
    /// entries ("all") — see [`delta_plan`].
    older: &'a [usize],
    delta: &'a DeltaSource<'a>,
    scope: Option<&'a RoundScope>,
    /// Visit order of body positions: the delta position first (it is
    /// the most selective source and its bindings prune every other
    /// position), then the rest by ascending estimated probe
    /// cardinality (see `collect_combos`). The old/delta/all split
    /// is decided by position, not visit order, so the enumerated
    /// combination set is unchanged.
    order: &'a [usize],
}

/// Extends `bindings` by matching the child's argument tuple against the
/// body atom's; `false` exactly when two constants conflict — the cases
/// `derive`'s equality union-find would reject as syntactically false,
/// so skipping them changes no view content under either operator.
fn bind_child(
    body: &BodyAtom,
    child_args: &[Term],
    bindings: &mut FxHashMap<Var, Value>,
    trail: &mut Vec<Var>,
) -> bool {
    if body.args.len() != child_args.len() {
        return false; // arity mismatch: derive would refuse anyway
    }
    for (b, c) in body.args.iter().zip(child_args) {
        match (b, c) {
            (Term::Const(bv), Term::Const(cv)) if bv != cv => return false,
            (Term::Const(_), _) => {}
            (Term::Var(u), Term::Const(cv)) => match bindings.get(u) {
                Some(v) if v != cv => return false,
                Some(_) => {}
                None => {
                    bindings.insert(*u, cv.clone());
                    trail.push(*u);
                }
            },
            // Variable or field child arguments carry no constant
            // information; the derived constraint decides.
            _ => {}
        }
    }
    true
}

fn unwind(bindings: &mut FxHashMap<Var, Value>, trail: &mut Vec<Var>, mark: usize) {
    for v in trail.drain(mark..) {
        bindings.remove(&v);
    }
}

fn combos_rec(
    ctx: &ComboCtx<'_>,
    stats: &mut FixpointStats,
    bindings: &mut FxHashMap<Var, Value>,
    trail: &mut Vec<Var>,
    combo: &mut Vec<EntryId>,
    out: &mut Vec<EntryId>,
) {
    let depth = combo.len();
    if depth == ctx.body.len() {
        // `combo` is in visit order; emit in body-position order.
        let start = out.len();
        out.resize(start + combo.len(), 0);
        for (d, &pos) in ctx.order.iter().enumerate() {
            out[start + pos] = combo[d];
        }
        return;
    }
    let i = ctx.order[depth];
    let atom = &ctx.body[i];
    let mark = trail.len();
    if i == ctx.dpos {
        match ctx.delta {
            DeltaSource::Entries(ids) => {
                stats.candidates_scanned += ids.len();
                // One delta list holds one predicate's entries, so the
                // liveness set is resolved once, not per candidate.
                let live = ctx.view.live_set(&atom.pred);
                for &id in *ids {
                    let e = ctx.view.entry(id);
                    if live.is_some_and(|s| s.contains_key(&id))
                        && bind_child(atom, &e.atom.args, bindings, trail)
                    {
                        combo.push(id);
                        combos_rec(ctx, stats, bindings, trail, combo, out);
                        combo.pop();
                    }
                    unwind(bindings, trail, mark);
                }
            }
            DeltaSource::Atom(a) => {
                if bind_child(atom, &a.args, bindings, trail) {
                    combo.push(ATOM_SLOT);
                    combos_rec(ctx, stats, bindings, trail, combo, out);
                    combo.pop();
                }
                unwind(bindings, trail, mark);
            }
        }
        return;
    }
    // Probe the constant-argument index with everything known here: the
    // body atom's own constants plus bindings implied by already-chosen
    // children. Ground facts thus join by lookup instead of scan.
    let cands = ctx.view.probe_with(
        &atom.pred,
        atom.args.iter().map(|t| match t {
            Term::Const(v) => Some(v),
            Term::Var(u) => bindings.get(u),
            Term::Field(..) => None,
        }),
    );
    if cands.discriminated() {
        stats.index_probes += 1;
    }
    stats.candidates_scanned += cands.len();
    // Old/delta/all split: positions already consumed as delta by
    // earlier splits of the plan draw from pre-round non-delta entries,
    // the remaining positions from all pre-round entries — each
    // combination enumerated exactly once per round. Whether *this*
    // position excludes the delta is fixed for the whole candidate loop.
    let excludes_delta = ctx.older.contains(&i);
    for id in cands.iter() {
        if let Some(sc) = ctx.scope {
            if id >= sc.watermark || (excludes_delta && sc.in_delta(id)) {
                continue;
            }
        }
        let e = ctx.view.entry(id);
        if bind_child(atom, &e.atom.args, bindings, trail) {
            combo.push(id);
            combos_rec(ctx, stats, bindings, trail, combo, out);
            combo.pop();
        }
        unwind(bindings, trail, mark);
    }
}

/// The per-clause, per-round delta plan, filled into the caller-held
/// scratch buffer `plan` (the round loops are allocation-free): the
/// body positions whose predicate carries delta entries this round,
/// ordered by ascending *estimated fan-out* — the number of delta
/// entries the position would seed the enumeration with (ties fall
/// back to clause order, keeping the plan deterministic).
///
/// The semi-naive decomposition needs every planned position to serve
/// as the delta exactly once, but the *order* of the splits is free:
/// for the split at rank `k`, positions of rank `< k` draw from the
/// round's non-delta ("old") entries and everything else from all
/// frozen entries, which keeps the splits disjoint and exhaustive under
/// any permutation. Leading with the smallest delta list means the
/// cheapest, most selective source drives the first (and therefore
/// every "all"-sourced) split — previously the splits ran in clause
/// order regardless of fan-out. The enumerated combination set is
/// identical under any order, which the `engine_equivalence` proptest
/// pins.
pub(crate) fn delta_plan(
    body: &[BodyAtom],
    delta_by_pred: &FxHashMap<Arc<str>, Vec<EntryId>>,
    plan: &mut Vec<usize>,
) {
    plan.clear();
    plan.extend((0..body.len()).filter(|i| delta_by_pred.contains_key(&body[*i].pred)));
    // Bodies are a handful of atoms, so re-probing the map per
    // comparison is cheaper than materializing a keyed scratch vector.
    plan.sort_unstable_by_key(|&i| (delta_by_pred.get(&body[i].pred).map_or(0, |d| d.len()), i));
}

/// Collects every combination of children for `body` where position
/// `dpos` draws from `delta`: under a round scope, the positions listed
/// in `older` (earlier splits of the round's [`delta_plan`]) draw from
/// the frozen round's non-delta entries and every other position from
/// all frozen entries; without a scope, all draw from all live entries.
/// Combinations are appended to `out` as flat chunks of `body.len()`
/// entry ids, so the caller can materialize, dedup, derive and insert
/// without this function holding any borrow of the view.
///
/// Join planning: the delta position is always visited first (its
/// bindings prune every later position), and the remaining positions
/// are visited by ascending *estimated probe cardinality* — the size of
/// the candidate list the view's constant-argument index would return
/// for the position's constant arguments with the delta position's
/// bindings folded in: a variable the delta will bind to a constant is
/// treated as bound for estimation (for a [`DeltaSource::Atom`] the
/// bindings are exact; for [`DeltaSource::Entries`] the first delta
/// entry serves as the representative). Positions with no binding fall
/// back to the full per-predicate live count. Visiting selective
/// positions early shrinks the enumeration tree; ties fall back to
/// clause order, keeping the plan deterministic. Only the visit order
/// changes — the enumerated combination set is identical under any
/// order, which the `engine_equivalence` proptest pins.
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_combos(
    view: &MaterializedView,
    body: &[BodyAtom],
    dpos: usize,
    older: &[usize],
    delta: &DeltaSource<'_>,
    scope: Option<&RoundScope>,
    stats: &mut FixpointStats,
    out: &mut Vec<EntryId>,
) {
    let mut order: Vec<usize> = Vec::with_capacity(body.len());
    order.push(dpos);
    // Bindings the delta position will impose once visited, used purely
    // for cardinality estimation of the remaining positions (a partial
    // map on conflict is fine — estimates steer order, never content).
    let mut est_bindings: FxHashMap<Var, Value> = FxHashMap::default();
    let mut est_trail: Vec<Var> = Vec::new();
    let delta_args = match delta {
        DeltaSource::Atom(a) => Some(a.args.as_slice()),
        DeltaSource::Entries(ids) => ids.first().map(|&id| view.entry(id).atom.args.as_slice()),
    };
    if let Some(args) = delta_args {
        let _ = bind_child(&body[dpos], args, &mut est_bindings, &mut est_trail);
    }
    let mut rest: Vec<(usize, usize)> = (0..body.len())
        .filter(|&i| i != dpos)
        .map(|i| {
            let est = view
                .probe_with(
                    &body[i].pred,
                    body[i].args.iter().map(|t| match t {
                        Term::Const(v) => Some(v),
                        Term::Var(u) => est_bindings.get(u),
                        Term::Field(..) => None,
                    }),
                )
                .len();
            (est, i)
        })
        .collect();
    rest.sort_unstable();
    order.extend(rest.into_iter().map(|(_, i)| i));
    let ctx = ComboCtx {
        view,
        body,
        dpos,
        older,
        delta,
        scope,
        order: &order,
    };
    let mut bindings = FxHashMap::default();
    let mut trail = Vec::new();
    let mut combo = Vec::with_capacity(body.len());
    combos_rec(&ctx, stats, &mut bindings, &mut trail, &mut combo, out);
}

/// Semi-naive propagation: closes `view` under the operator, starting
/// from `delta` (ids of entries not yet combined with the rest). This is
/// both the fixpoint engine's inner loop and the upward-propagation step
/// of the insertion algorithm (`P_ADD`, Algorithm 3).
pub(crate) fn propagate(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    view: &mut MaterializedView,
    delta: Vec<EntryId>,
    config: &FixpointConfig,
    stats: &mut FixpointStats,
) -> Result<(), FixpointError> {
    // The var gen leaves the view for the duration of the run so that
    // `derive` can standardize apart while the child atoms stay borrowed
    // from the view — the per-combination deep clone the engine used to
    // pay to appease the borrow checker is gone.
    let mut gen = std::mem::take(view.var_gen_mut());
    let ctx = EngineCtx {
        db,
        resolver,
        op,
        config,
    };
    let result = propagate_rounds(&ctx, view, &mut gen, delta, stats);
    *view.var_gen_mut() = gen;
    result
}

struct EngineCtx<'a> {
    db: &'a ConstrainedDatabase,
    resolver: &'a dyn DomainResolver,
    op: Operator,
    config: &'a FixpointConfig,
}

fn propagate_rounds(
    ctx: &EngineCtx<'_>,
    view: &mut MaterializedView,
    gen: &mut VarGen,
    mut delta: Vec<EntryId>,
    stats: &mut FixpointStats,
) -> Result<(), FixpointError> {
    let mut rounds = RoundState::new();
    let mut combos: Vec<EntryId> = Vec::new();
    let mut plan: Vec<usize> = Vec::new();
    let parallel = ctx
        .config
        .parallel
        .as_ref()
        .filter(|p| p.pool.threads() > 1);
    // Semi-naive rounds.
    while !delta.is_empty() {
        stats.iterations += 1;
        if stats.iterations > ctx.config.max_iterations {
            return Err(FixpointError::IterationBudget {
                iterations: stats.iterations,
            });
        }
        let scope = rounds.begin(view, &delta);
        let delta_by_pred = group_by_pred(view, &delta);
        let mut next_delta: Vec<EntryId> = Vec::new();
        match parallel {
            Some(par) => round_parallel(
                ctx,
                par,
                view,
                gen,
                &scope,
                &delta_by_pred,
                stats,
                &mut next_delta,
                &mut plan,
            )?,
            None => round_sequential(
                ctx,
                view,
                gen,
                &scope,
                &delta_by_pred,
                stats,
                &mut next_delta,
                &mut plan,
                &mut combos,
            )?,
        }
        delta = next_delta;
    }
    Ok(())
}

/// One sequential semi-naive round: every `(clause, delta-position)`
/// split of the plan, enumerated, derived and inserted in order.
#[allow(clippy::too_many_arguments)]
fn round_sequential(
    ctx: &EngineCtx<'_>,
    view: &mut MaterializedView,
    gen: &mut VarGen,
    scope: &RoundScope,
    delta_by_pred: &FxHashMap<Arc<str>, Vec<EntryId>>,
    stats: &mut FixpointStats,
    next_delta: &mut Vec<EntryId>,
    plan: &mut Vec<usize>,
    combos: &mut Vec<EntryId>,
) -> Result<(), FixpointError> {
    let mode = view.mode();
    for (cid, clause) in ctx.db.clauses() {
        let n = clause.body.len();
        if n == 0 {
            continue;
        }
        delta_plan(&clause.body, delta_by_pred, plan);
        for (k, &dpos) in plan.iter().enumerate() {
            let dlist = delta_by_pred
                .get(&clause.body[dpos].pred)
                .expect("planned positions carry delta");
            combos.clear();
            collect_combos(
                view,
                &clause.body,
                dpos,
                &plan[..k],
                &DeltaSource::Entries(dlist),
                Some(scope),
                stats,
                combos,
            );
            for chunk in combos.chunks_exact(n) {
                stats.derivations_tried += 1;
                // Support-level dedup before paying for construction;
                // the support is assembled once, from Arc-shared
                // child supports, and reused for the insert.
                let support = if mode == SupportMode::WithSupports {
                    let s = Support::node(
                        Producer::Clause(cid),
                        chunk
                            .iter()
                            .map(|&id| view.entry(id).support.clone().expect("WithSupports entry"))
                            .collect(),
                    );
                    if view.entry_by_support(&s).is_some() {
                        continue;
                    }
                    Some(s)
                } else {
                    None
                };
                let derived = {
                    let children: Vec<&ConstrainedAtom> =
                        chunk.iter().map(|&id| &view.entry(id).atom).collect();
                    derive(clause, &children, gen)
                };
                let Some(d) = derived else {
                    stats.pruned_syntactic += 1;
                    continue;
                };
                if !admit(ctx.op, &d.atom.constraint, ctx.resolver, ctx.config, stats) {
                    continue;
                }
                if let Some(id) = view.insert(d.atom, support, d.children_args) {
                    next_delta.push(id);
                    if view.len() > ctx.config.max_entries {
                        return Err(FixpointError::EntryBudget {
                            entries: view.len(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// What one pool task hands back to the round's merge: its candidate
/// derivations in enumeration order, its private stats, and the high
/// mark of the variable generator it renamed with.
struct TaskOutput {
    candidates: Vec<(Option<Support>, Derivation)>,
    stats: FixpointStats,
    gen_high: u32,
}

/// One parallel semi-naive round. The decomposition mirrors the
/// sequential round exactly: one pool task per `(clause,
/// delta-position)` split, submitted in the sequential iteration order.
///
/// Why a task may run against a *frozen clone* of the round-start view:
/// a propagation round only inserts (never removes or rewrites), and
/// the round scope's watermark filter already excludes every entry
/// inserted during the round from enumeration — so the live view and
/// the frozen clone enumerate byte-identical combination sets, and
/// entries (immutable once inserted) referenced by id resolve
/// identically in both. The clone itself is a handful of `Arc` bumps
/// under the persistent store.
///
/// Why the merge is deterministic: task results come back in submission
/// order, candidates within a task in enumeration order, so the merge
/// loop below inserts exactly the entries the sequential round inserts,
/// in the same order — ids, supports and the delta for the next round
/// are identical. The one divergence is bookkeeping: a duplicate
/// produced by an *earlier split of the same round* is skipped before
/// `derive` sequentially but detected only at the merge here, so the
/// `derivations_tried`/`pruned_*` counters can differ slightly from the
/// sequential run's. They are still deterministic for any thread count
/// (every task dedups against the same frozen view).
///
/// Variable hygiene: each task renames with a private generator started
/// at the live generator's watermark, so task output never collides
/// with the view; two tasks may reuse the same fresh numbers, which is
/// harmless because `derive` renames every child per derivation and all
/// equality in the system (canonicalization, support dedup) is
/// renaming-insensitive. The merge bumps the live generator past every
/// task's high mark.
///
/// A task panic surfaces here, on the submitting thread, in submission
/// order, as [`FixpointError::WorkerPanic`] — an *error*, not a
/// re-panic, so the submitting lane's mutex is never poisoned and the
/// service's ordinary rollback-on-error path restores every touched
/// lane. The merge never runs for a panicked round, so the view holds
/// exactly the pre-round state, and the pool's workers survive.
#[allow(clippy::too_many_arguments)]
fn round_parallel(
    ctx: &EngineCtx<'_>,
    par: &ParallelFixpoint,
    view: &mut MaterializedView,
    gen: &mut VarGen,
    scope: &RoundScope,
    delta_by_pred: &FxHashMap<Arc<str>, Vec<EntryId>>,
    stats: &mut FixpointStats,
    next_delta: &mut Vec<EntryId>,
    plan: &mut Vec<usize>,
) -> Result<(), FixpointError> {
    let mode = view.mode();
    // The round's splits, in sequential iteration order.
    let mut splits: Vec<(ClauseId, &Clause, usize, Vec<usize>)> = Vec::new();
    for (cid, clause) in ctx.db.clauses() {
        if clause.body.is_empty() {
            continue;
        }
        delta_plan(&clause.body, delta_by_pred, plan);
        for (k, &dpos) in plan.iter().enumerate() {
            splits.push((cid, clause, dpos, plan[..k].to_vec()));
        }
    }
    let frozen = Arc::new(view.clone());
    let base_watermark = gen.watermark();
    let config = Arc::new(ctx.config.clone());
    let op = ctx.op;
    let tasks: Vec<_> = splits
        .into_iter()
        .map(|(cid, clause, dpos, older)| {
            let frozen = Arc::clone(&frozen);
            let scope = scope.clone();
            let clause = clause.clone();
            let dlist = delta_by_pred
                .get(&clause.body[dpos].pred)
                .expect("planned positions carry delta")
                .clone();
            let resolver = Arc::clone(&par.resolver);
            let config = Arc::clone(&config);
            move || {
                let mut stats = FixpointStats::default();
                let mut gen = VarGen::starting_at(base_watermark);
                let mut combos: Vec<EntryId> = Vec::new();
                collect_combos(
                    &frozen,
                    &clause.body,
                    dpos,
                    &older,
                    &DeltaSource::Entries(&dlist),
                    Some(&scope),
                    &mut stats,
                    &mut combos,
                );
                let n = clause.body.len();
                let mut candidates = Vec::new();
                for chunk in combos.chunks_exact(n) {
                    stats.derivations_tried += 1;
                    let support = if mode == SupportMode::WithSupports {
                        let s = Support::node(
                            Producer::Clause(cid),
                            chunk
                                .iter()
                                .map(|&id| {
                                    frozen
                                        .entry(id)
                                        .support
                                        .clone()
                                        .expect("WithSupports entry")
                                })
                                .collect(),
                        );
                        if frozen.entry_by_support(&s).is_some() {
                            continue;
                        }
                        Some(s)
                    } else {
                        None
                    };
                    let derived = {
                        let children: Vec<&ConstrainedAtom> =
                            chunk.iter().map(|&id| &frozen.entry(id).atom).collect();
                        derive(&clause, &children, &mut gen)
                    };
                    let Some(d) = derived else {
                        stats.pruned_syntactic += 1;
                        continue;
                    };
                    if !admit(
                        op,
                        &d.atom.constraint,
                        resolver.as_ref(),
                        &config,
                        &mut stats,
                    ) {
                        continue;
                    }
                    candidates.push((support, d));
                }
                TaskOutput {
                    candidates,
                    stats,
                    gen_high: gen.watermark(),
                }
            }
        })
        .collect();
    let results = par.pool.run(tasks);
    let mut outputs = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(o) => outputs.push(o),
            Err(payload) => {
                return Err(FixpointError::WorkerPanic {
                    message: crate::pool::panic_message(payload.as_ref()),
                })
            }
        }
    }
    // Deterministic merge, on the caller thread, in submission order.
    // The live-view dedup re-check catches duplicates across splits of
    // this round (the frozen view could not see them); plain mode's
    // `insert` dedups internally.
    let mut gen_high = base_watermark;
    for out in outputs {
        stats.absorb(&out.stats);
        gen_high = gen_high.max(out.gen_high);
        for (support, d) in out.candidates {
            if let Some(s) = &support {
                if view.entry_by_support(s).is_some() {
                    continue;
                }
            }
            if let Some(id) = view.insert(d.atom, support, d.children_args) {
                next_delta.push(id);
                if view.len() > ctx.config.max_entries {
                    gen.reserve_below(gen_high);
                    return Err(FixpointError::EntryBudget {
                        entries: view.len(),
                    });
                }
            }
        }
    }
    gen.reserve_below(gen_high);
    Ok(())
}

/// The operator's admission test for a derived constraint.
fn admit(
    op: Operator,
    constraint: &Constraint,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
    stats: &mut FixpointStats,
) -> bool {
    match op {
        Operator::Wp => true,
        Operator::Tp => {
            if satisfiable_with(constraint, resolver, &config.solver) == Truth::Unsat {
                stats.pruned_unsolvable += 1;
                false
            } else {
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BodyAtom, Clause};
    use mmv_constraints::{CmpOp, NoDomains, Value};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The paper's Example 5 database (ids 0-based; paper clause k =
    /// `ClauseId(k-1)`):
    /// 1. `A(X) <- X <= 3`
    /// 2. `A(X) <- B(X)`
    /// 3. `B(X) <- X <= 5`
    /// 4. `C(X) <- A(X)`
    fn example5_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    fn render(view: &MaterializedView) -> Vec<String> {
        let mut v: Vec<String> = view
            .live_entries()
            .map(|(_, e)| {
                let atom = crate::view::canonicalize(&e.atom);
                match &e.support {
                    Some(s) => format!("{atom} {s}"),
                    None => atom.to_string(),
                }
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn example5_view_matches_paper() {
        let db = example5_db();
        let (view, stats) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // Paper's materialized view (supports in 1-based clause numbers
        // there; 0-based here):
        //   A(X) <- X <= 3   <0>
        //   A(X) <- X <= 5   <1, <2>>
        //   B(X) <- X <= 5   <2>
        //   C(X) <- X <= 3   <3, <0>>
        //   C(X) <- X <= 5   <3, <1, <2>>>
        assert_eq!(
            render(&view),
            vec![
                "A(X0) <- X0 <= 3 <0>",
                "A(X0) <- X0 <= 5 <1, <2>>",
                "B(X0) <- X0 <= 5 <2>",
                "C(X0) <- X0 <= 3 <3, <0>>",
                "C(X0) <- X0 <= 5 <3, <1, <2>>>",
            ]
        );
        assert_eq!(view.len(), 5);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn example6_recursive_view_matches_paper() {
        // Example 6:
        //   1. P(X,Y) <- X = a & Y = b
        //   2. P(X,Y) <- X = a & Y = c
        //   3. P(X,Y) <- X = c & Y = d
        //   4. A(X,Y) <- P(X,Y)
        //   5. A(X,Y) <- P(X,Z), A(Z,Y)
        let (xv, yv, zv) = (Term::var(Var(0)), Term::var(Var(1)), Term::var(Var(2)));
        let pfact = |a: &str, b: &str| {
            Clause::fact(
                "P",
                vec![xv.clone(), yv.clone()],
                Constraint::eq(xv.clone(), Term::str(a))
                    .and(Constraint::eq(yv.clone(), Term::str(b))),
            )
        };
        let db = ConstrainedDatabase::from_clauses(vec![
            pfact("a", "b"),
            pfact("a", "c"),
            pfact("c", "d"),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![BodyAtom::new("P", vec![xv.clone(), yv.clone()])],
            ),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![
                    BodyAtom::new("P", vec![xv.clone(), zv.clone()]),
                    BodyAtom::new("A", vec![zv.clone(), yv.clone()]),
                ],
            ),
        ]);
        let (view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // The paper's 7-entry view: 3 P facts, 3 A copies, and the
        // recursive A(a, d) via P(a,c) ∧ A(c,d).
        assert_eq!(view.len(), 7);
        let inst = view
            .instances(&NoDomains, &SolverConfig::default())
            .unwrap();
        let a_insts: Vec<_> = inst
            .iter()
            .filter(|(p, _)| p.as_ref() == "A")
            .map(|(_, t)| t.clone())
            .collect();
        assert!(a_insts.contains(&vec![Value::str("a"), Value::str("d")]));
        assert_eq!(a_insts.len(), 4);
        // The recursive entry comes from clause 5 (0-based: 4) with
        // children P(a,c) (clause 2 -> <1>) and the derived A(c,d)
        // (paper support <4,<3>> -> 0-based <3, <2>>).
        let deep = view
            .live_entries()
            .find(|(_, e)| e.support.as_ref().is_some_and(|s| s.height() == 2))
            .expect("recursive entry");
        assert_eq!(
            deep.1.support.as_ref().unwrap().to_string(),
            "<4, <1>, <3, <2>>>"
        );
    }

    #[test]
    fn wp_keeps_unsolvable_derivations() {
        // Under a resolver where the call is empty, T_P prunes but W_P
        // retains the atom (Example 7's B(X) <- in(X, d:g(b))).
        let call = mmv_constraints::Call::new("d", "g", vec![Term::str("b")]);
        let db = ConstrainedDatabase::from_clauses(vec![Clause::fact(
            "B",
            vec![x()],
            Constraint::member(x(), call),
        )]);
        let (tp_view, _) = fixpoint(
            &db,
            &NoDomains, // every call resolves to {} -> unsolvable
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(tp_view.len(), 0);
        let (wp_view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Wp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(wp_view.len(), 1);
    }

    /// Example 5 with a lower bound added so instance sets are finite.
    fn bounded_example5_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(3),
                )),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(5),
                )),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    #[test]
    fn plain_mode_produces_same_instances() {
        let db = bounded_example5_db();
        let cfg = FixpointConfig::default();
        let (with, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        let (plain, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        let scfg = SolverConfig::default();
        assert_eq!(
            with.instances(&NoDomains, &scfg).unwrap(),
            plain.instances(&NoDomains, &scfg).unwrap()
        );
        // Plain mode deduplicates; duplicate semantics keeps both A atoms.
        assert!(plain.len() <= with.len());
    }

    #[test]
    fn iteration_budget_reports_divergence() {
        // succ-style runaway recursion: N(X) <- N(Y) & X = Y + 1 over the
        // arith domain would diverge; simulate with a self-join that
        // always makes fresh atoms. Here: N(X) <- X >= 0; N(X) <- N(Y), X > Y.
        // Each round builds new constraints, and plain-mode dedup cannot
        // close it because the constraint grows.
        let y = Term::var(Var(1));
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "N",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)),
            ),
            Clause::new(
                "N",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Gt, y.clone()),
                vec![BodyAtom::new("N", vec![y.clone()])],
            ),
        ]);
        let cfg = FixpointConfig {
            max_iterations: 16,
            ..FixpointConfig::default()
        };
        let err = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, FixpointError::IterationBudget { .. }));
    }

    #[test]
    fn constant_index_prunes_ground_joins() {
        // Transitive closure over a 20-edge ground chain. Every entry is
        // ground, so the recursive clause's second position joins by
        // constant lookup: candidates scanned stays linear in the number
        // of real derivations, where blind cartesian enumeration would
        // scan |e| x |tc| pairs per round (tens of thousands).
        let k: i64 = 20;
        let mut clauses: Vec<Clause> = (0..k)
            .map(|i| {
                Clause::fact(
                    "e",
                    vec![Term::int(i), Term::int(i + 1)],
                    Constraint::truth(),
                )
            })
            .collect();
        let (xv, yv, zv) = (Term::var(Var(0)), Term::var(Var(1)), Term::var(Var(2)));
        clauses.push(Clause::new(
            "tc",
            vec![xv.clone(), yv.clone()],
            Constraint::truth(),
            vec![BodyAtom::new("e", vec![xv.clone(), yv.clone()])],
        ));
        clauses.push(Clause::new(
            "tc",
            vec![xv.clone(), yv.clone()],
            Constraint::truth(),
            vec![
                BodyAtom::new("e", vec![xv.clone(), zv.clone()]),
                BodyAtom::new("tc", vec![zv.clone(), yv.clone()]),
            ],
        ));
        let db = ConstrainedDatabase::from_clauses(clauses);
        let (view, stats) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();
        // k edges + k(k+1)/2 closure facts.
        assert_eq!(view.len() as i64, k + k * (k + 1) / 2);
        assert!(stats.index_probes > 0, "index never probed");
        // Every enumerated combination is a real derivation: the index
        // plus delta-first binding propagation leaves nothing to prune.
        assert_eq!(view.len(), stats.derivations_tried);
        // Blind cartesian enumeration scans |e| x |tc| pairs per round
        // (> 4000 on this chain); the index keeps scanning linear in the
        // derivation count (measured: 459).
        assert!(
            stats.candidates_scanned < 1000,
            "index failed to prune: scanned {}",
            stats.candidates_scanned
        );
    }

    #[test]
    fn seeded_fixpoint_is_inflationary() {
        let db = example5_db();
        let cfg = FixpointConfig::default();
        let (mut seed, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        // Inject an extra fact entry, then re-run: everything survives.
        let extra = ConstrainedAtom::new(
            "A",
            vec![Term::var(Var(900))],
            Constraint::eq(Term::var(Var(900)), Term::int(99)),
        );
        let ticket = seed.fresh_external_ticket();
        seed.insert(
            extra,
            Some(Support::leaf(Producer::External(ticket))),
            vec![],
        );
        let before = seed.len();
        let (closed, _) = fixpoint_seeded(&db, &NoDomains, Operator::Tp, seed, &cfg).unwrap();
        // The new A atom feeds clause 4 (C(X) <- A(X)): at least one new
        // derivation appears.
        assert!(closed.len() > before);
        let hits = closed
            .query(
                "C",
                &[Some(Value::int(99))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
    }
}

/// Property check: the indexed join engine must be observationally
/// identical to a blind reference evaluator — the pre-index engine with
/// per-round full rescans, `HashSet` delta partitioning, unfiltered
/// cartesian products, and per-combination clones — on random constrained
/// databases, for both operators and both view modes.
#[cfg(test)]
mod engine_equivalence {
    use super::*;
    use crate::program::Clause;
    use mmv_constraints::{CmpOp, NoDomains};
    use proptest::prelude::*;
    use std::collections::HashSet;

    /// The reference evaluator. Deliberately naive: candidate lists are
    /// rebuilt from a full `live_entries` scan every round and every
    /// combination is enumerated and cloned.
    fn naive_fixpoint(
        db: &ConstrainedDatabase,
        resolver: &dyn DomainResolver,
        op: Operator,
        mode: SupportMode,
        config: &FixpointConfig,
    ) -> Result<MaterializedView, FixpointError> {
        let mut view = MaterializedView::new(mode, db.fresh_gen());
        let mut stats = FixpointStats::default();
        let mut delta: Vec<EntryId> = Vec::new();
        for (cid, clause) in db.clauses() {
            if !clause.body.is_empty() {
                continue;
            }
            let Some(d) = derive(clause, &[], view.var_gen_mut()) else {
                continue;
            };
            if !admit(op, &d.atom.constraint, resolver, config, &mut stats) {
                continue;
            }
            let support = matches!(mode, SupportMode::WithSupports)
                .then(|| Support::leaf(Producer::Clause(cid)));
            if let Some(id) = view.insert(d.atom, support, d.children_args) {
                delta.push(id);
            }
        }
        let mut iterations = 0usize;
        while !delta.is_empty() {
            iterations += 1;
            if iterations > config.max_iterations {
                return Err(FixpointError::IterationBudget { iterations });
            }
            let delta_set: HashSet<EntryId> = delta.iter().copied().collect();
            let mut all: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
            let mut old: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
            let mut delta_by_pred: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
            for (id, e) in view.live_entries() {
                all.entry(e.atom.pred.clone()).or_default().push(id);
                if delta_set.contains(&id) {
                    delta_by_pred
                        .entry(e.atom.pred.clone())
                        .or_default()
                        .push(id);
                } else {
                    old.entry(e.atom.pred.clone()).or_default().push(id);
                }
            }
            let empty: Vec<EntryId> = Vec::new();
            let mut next_delta: Vec<EntryId> = Vec::new();
            for (cid, clause) in db.clauses() {
                let n = clause.body.len();
                if n == 0 {
                    continue;
                }
                for dpos in 0..n {
                    let dlist = delta_by_pred.get(&clause.body[dpos].pred).unwrap_or(&empty);
                    if dlist.is_empty() {
                        continue;
                    }
                    let lists: Vec<&[EntryId]> = (0..n)
                        .map(|i| {
                            let src = match i.cmp(&dpos) {
                                std::cmp::Ordering::Less => old.get(&clause.body[i].pred),
                                std::cmp::Ordering::Equal => Some(dlist),
                                std::cmp::Ordering::Greater => all.get(&clause.body[i].pred),
                            };
                            src.map(|v| v.as_slice()).unwrap_or(&[])
                        })
                        .collect();
                    if lists.iter().any(|l| l.is_empty()) {
                        continue;
                    }
                    let mut combo = vec![0usize; n];
                    'combos: loop {
                        let ids: Vec<EntryId> = (0..n).map(|i| lists[i][combo[i]]).collect();
                        let support = matches!(mode, SupportMode::WithSupports).then(|| {
                            Support::node(
                                Producer::Clause(cid),
                                ids.iter()
                                    .map(|&id| view.entry(id).support.clone().expect("supports"))
                                    .collect(),
                            )
                        });
                        let duplicate = support
                            .as_ref()
                            .is_some_and(|s| view.entry_by_support(s).is_some());
                        if !duplicate {
                            // The historic clone-per-combination block.
                            let owned: Vec<ConstrainedAtom> =
                                ids.iter().map(|&id| view.entry(id).atom.clone()).collect();
                            let derived = {
                                let refs: Vec<&ConstrainedAtom> = owned.iter().collect();
                                derive(clause, &refs, view.var_gen_mut())
                            };
                            if let Some(d) = derived {
                                if admit(op, &d.atom.constraint, resolver, config, &mut stats) {
                                    if let Some(id) = view.insert(d.atom, support, d.children_args)
                                    {
                                        next_delta.push(id);
                                        if view.len() > config.max_entries {
                                            return Err(FixpointError::EntryBudget {
                                                entries: view.len(),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        for i in 0..n {
                            combo[i] += 1;
                            if combo[i] < lists[i].len() {
                                continue 'combos;
                            }
                            combo[i] = 0;
                        }
                        break;
                    }
                }
            }
            delta = next_delta;
        }
        Ok(view)
    }

    fn var_term() -> impl Strategy<Value = Term> {
        (0u32..3).prop_map(|v| Term::var(Var(v)))
    }

    fn any_term() -> impl Strategy<Value = Term> {
        prop_oneof![2 => var_term(), 1 => (0i64..4).prop_map(Term::int)]
    }

    /// Body atoms over a fixed-arity vocabulary: `e/2` and `b/1` are fact
    /// predicates, `q/1` and `r/2` derived (possibly mutually recursive).
    fn body_atom() -> impl Strategy<Value = BodyAtom> {
        prop_oneof![
            3 => (any_term(), any_term()).prop_map(|(a, b)| BodyAtom::new("e", vec![a, b])),
            2 => any_term().prop_map(|t| BodyAtom::new("b", vec![t])),
            1 => any_term().prop_map(|t| BodyAtom::new("q", vec![t])),
            1 => (any_term(), any_term()).prop_map(|(a, b)| BodyAtom::new("r", vec![a, b])),
        ]
    }

    fn rule() -> impl Strategy<Value = Clause> {
        let head = prop_oneof![Just(("q", 1u32)), Just(("r", 2u32))];
        (head, collection::vec(body_atom(), 1..=2_usize)).prop_map(|((pred, arity), body)| {
            let args: Vec<Term> = (0..arity).map(|i| Term::var(Var(i))).collect();
            Clause::new(pred, args, Constraint::truth(), body)
        })
    }

    fn ground_fact() -> impl Strategy<Value = Clause> {
        ((0i64..4), (0i64..4)).prop_map(|(a, b)| {
            Clause::fact("e", vec![Term::int(a), Term::int(b)], Constraint::truth())
        })
    }

    fn interval_fact() -> impl Strategy<Value = Clause> {
        ((0i64..6), (0i64..4)).prop_map(|(lo, w)| {
            let x = Term::var(Var(0));
            Clause::fact(
                "b",
                vec![x.clone()],
                Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
                    x,
                    CmpOp::Le,
                    Term::int(lo + w),
                )),
            )
        })
    }

    fn db_strategy() -> impl Strategy<Value = ConstrainedDatabase> {
        (
            collection::vec(ground_fact(), 2..=6_usize),
            collection::vec(interval_fact(), 1..=3_usize),
            collection::vec(rule(), 1..=4_usize),
        )
            .prop_map(|(ground, intervals, rules)| {
                ConstrainedDatabase::from_clauses(ground.into_iter().chain(intervals).chain(rules))
            })
    }

    /// Shared pools for the thread sweep: 1, 2, and N (honoring
    /// `MMV_POOL_THREADS`, at least 4) worker threads, built once.
    fn sweep_pools() -> &'static [Arc<WorkerPool>] {
        use std::sync::OnceLock;
        static POOLS: OnceLock<Vec<Arc<WorkerPool>>> = OnceLock::new();
        POOLS.get_or_init(|| {
            let n = std::env::var("MMV_POOL_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
                .max(4);
            [1, 2, n]
                .into_iter()
                .map(|t| Arc::new(WorkerPool::new(t)))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32),
            failure_persistence: None,
            ..ProptestConfig::default()
        })]

        #[test]
        fn indexed_engine_matches_naive_reference(db in db_strategy()) {
            let cfg = FixpointConfig {
                max_iterations: 10,
                max_entries: 600,
                ..FixpointConfig::default()
            };
            for op in [Operator::Tp, Operator::Wp] {
                for mode in [SupportMode::Plain, SupportMode::WithSupports] {
                    let naive = naive_fixpoint(&db, &NoDomains, op, mode, &cfg);
                    let indexed = fixpoint(&db, &NoDomains, op, mode, &cfg);
                    match (&naive, &indexed) {
                        (Ok(nv), Ok((iv, _))) => prop_assert!(
                            nv.syntactically_equal(iv),
                            "{op:?}/{mode:?} diverged on\n{db}\nnaive:\n{nv}\nindexed:\n{iv}"
                        ),
                        // Budget exhaustion (runaway recursion) must hit
                        // both engines: they insert identical entries.
                        (Err(_), Err(_)) => {}
                        (n, i) => prop_assert!(
                            false,
                            "asymmetric outcome on\n{db}\nnaive ok: {}, indexed ok: {}",
                            n.is_ok(),
                            i.is_ok()
                        ),
                    }
                    // Pool sweep: the parallel engine must be
                    // syntactically identical to sequential at every
                    // pool width (supports included).
                    for pool in sweep_pools() {
                        let pcfg = FixpointConfig {
                            parallel: Some(ParallelFixpoint {
                                pool: Arc::clone(pool),
                                resolver: Arc::new(NoDomains),
                            }),
                            ..cfg.clone()
                        };
                        let parallel = fixpoint(&db, &NoDomains, op, mode, &pcfg);
                        match (&indexed, &parallel) {
                            (Ok((sv, _)), Ok((pv, _))) => prop_assert!(
                                sv.syntactically_equal(pv),
                                "{op:?}/{mode:?} parallel({}) diverged on\n{db}\n\
                                 sequential:\n{sv}\nparallel:\n{pv}",
                                pool.threads()
                            ),
                            (Err(_), Err(_)) => {}
                            (s, p) => prop_assert!(
                                false,
                                "asymmetric outcome at {} threads on\n{db}\n\
                                 sequential ok: {}, parallel ok: {}",
                                pool.threads(),
                                s.is_ok(),
                                p.is_ok()
                            ),
                        }
                    }
                }
            }
        }
    }
}
