//! The fixpoint operators `T_P` (Gabbrielli–Levi, §2.3) and `W_P` (§4).
//!
//! Both map interpretations (sets of constrained atoms) to
//! interpretations by instantiating clauses with standardized-apart view
//! entries and conjoining the resulting constraints. Their single
//! difference is the paper's central observation: `T_P` requires the
//! combined constraint to be *solvable at evaluation time*, so external
//! domain updates invalidate the view; `W_P` omits the check, making the
//! materialized view a purely syntactic object that never needs
//! maintenance under external change (Theorem 4).
//!
//! Iteration is semi-naive under duplicate semantics: a derivation is new
//! iff its support is new (Lemma 1), so each derivation is constructed at
//! most once.

use crate::atom::ConstrainedAtom;
use crate::normalize::normalize;
use crate::program::{Clause, ClauseId, ConstrainedDatabase};
use crate::support::{Producer, Support};
use crate::view::{EntryId, MaterializedView, SupportMode};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{
    satisfiable_with, Constraint, DomainResolver, Lit, SolverConfig, Term, Truth, Var, VarGen,
};
use std::fmt;
use std::sync::Arc;

/// Which operator to iterate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// Gabbrielli–Levi `T_P`: keep a derived atom only if its constraint
    /// is solvable against the resolver's current state.
    Tp,
    /// The paper's `W_P`: keep every derived atom; satisfiability is
    /// deferred to query time.
    Wp,
}

/// Budgets and knobs for fixpoint iteration.
#[derive(Debug, Clone)]
pub struct FixpointConfig {
    /// Solver budgets for the per-derivation solvability test (`T_P`).
    pub solver: SolverConfig,
    /// Maximum semi-naive rounds before giving up.
    pub max_iterations: usize,
    /// Maximum live view entries before giving up.
    pub max_entries: usize,
}

impl Default for FixpointConfig {
    fn default() -> Self {
        FixpointConfig {
            solver: SolverConfig::default(),
            max_iterations: 512,
            max_entries: 1_000_000,
        }
    }
}

/// Fixpoint iteration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FixpointError {
    /// The iteration budget was exhausted (likely a recursive program
    /// with infinitely many derivations — see DESIGN.md §3).
    IterationBudget {
        /// Rounds executed.
        iterations: usize,
    },
    /// The entry budget was exhausted.
    EntryBudget {
        /// Entries materialized.
        entries: usize,
    },
}

impl fmt::Display for FixpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpointError::IterationBudget { iterations } => {
                write!(
                    f,
                    "fixpoint iteration budget exhausted after {iterations} rounds"
                )
            }
            FixpointError::EntryBudget { entries } => {
                write!(f, "fixpoint entry budget exhausted at {entries} entries")
            }
        }
    }
}

impl std::error::Error for FixpointError {}

/// Statistics of one fixpoint run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FixpointStats {
    /// Semi-naive rounds executed.
    pub iterations: usize,
    /// Derivations constructed (before dedup/solvability filtering).
    pub derivations_tried: usize,
    /// Derivations discarded by the `T_P` solvability check.
    pub pruned_unsolvable: usize,
    /// Derivations discarded as syntactically false.
    pub pruned_syntactic: usize,
}

/// A candidate derivation, before filtering.
pub(crate) struct Derivation {
    pub atom: ConstrainedAtom,
    pub support: Support,
    pub children_args: Vec<Vec<Term>>,
}

/// Builds one derivation: clause `cid` applied to `children` (one view
/// entry per body atom), standardizing everything apart from `gen`.
/// Returns `None` if the combined constraint is syntactically false.
pub(crate) fn derive(
    cid: ClauseId,
    clause: &Clause,
    children: &[(&ConstrainedAtom, Support)],
    gen: &mut VarGen,
) -> Option<Derivation> {
    debug_assert_eq!(clause.body.len(), children.len());
    let rc = clause.rename(gen);
    let mut constraint = rc.constraint.clone();
    let mut children_args: Vec<Vec<Term>> = Vec::with_capacity(children.len());
    let mut supports: Vec<Support> = Vec::with_capacity(children.len());
    for (body_atom, (child, spt)) in rc.body.iter().zip(children) {
        if body_atom.args.len() != child.args.len() {
            return None; // arity mismatch: no derivation
        }
        let mut map = FxHashMap::default();
        let rchild = child.rename_into(&mut map, gen);
        constraint = constraint.and(rchild.constraint.clone());
        for (ca, ba) in rchild.args.iter().zip(&body_atom.args) {
            if ca != ba {
                constraint = constraint.and_lit(Lit::Eq(ca.clone(), ba.clone()));
            }
        }
        children_args.push(rchild.args);
        supports.push(spt.clone());
    }
    // Normalize: propagate equalities, preferring head-arg variables as
    // representatives, then simplify.
    let mut order: Vec<Var> = Vec::new();
    for t in &rc.head_args {
        t.collect_vars(&mut order);
    }
    let (subst, constraint) = normalize(&constraint, &order).ok()?;
    let head_args: Vec<Term> = rc.head_args.iter().map(|t| t.substitute(&subst)).collect();
    let children_args = children_args
        .into_iter()
        .map(|args| args.into_iter().map(|t| t.substitute(&subst)).collect())
        .collect();
    Some(Derivation {
        atom: ConstrainedAtom {
            pred: rc.head_pred.clone(),
            args: head_args,
            constraint,
        },
        support: Support::node(Producer::Clause(cid), supports),
        children_args,
    })
}

/// Computes the least fixpoint `op ↑ ω (∅)` of the database.
pub fn fixpoint(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    mode: SupportMode,
    config: &FixpointConfig,
) -> Result<(MaterializedView, FixpointStats), FixpointError> {
    let view = MaterializedView::new(mode, db.fresh_gen());
    fixpoint_seeded(db, resolver, op, view, config)
}

/// Continues fixpoint iteration from an existing interpretation (used by
/// Extended DRed's rederivation `T_{P''} ↑ ω (M')` and by tests).
/// The seed's live entries form the initial delta; clause facts are
/// (re)derived as usual and deduplicated against the seed.
pub fn fixpoint_seeded(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    mut view: MaterializedView,
    config: &FixpointConfig,
) -> Result<(MaterializedView, FixpointStats), FixpointError> {
    let mut stats = FixpointStats::default();
    let mode = view.mode();
    let mut delta: Vec<EntryId> = view.live_entries().map(|(id, _)| id).collect();

    // Round 0: constrained facts (empty-body clauses).
    for (cid, clause) in db.clauses() {
        if !clause.body.is_empty() {
            continue;
        }
        stats.derivations_tried += 1;
        let Some(d) = derive(cid, clause, &[], view.var_gen_mut()) else {
            stats.pruned_syntactic += 1;
            continue;
        };
        if !admit(op, &d.atom.constraint, resolver, config, &mut stats) {
            continue;
        }
        let support = matches!(mode, SupportMode::WithSupports).then_some(d.support);
        if let Some(id) = view.insert(d.atom, support, d.children_args) {
            delta.push(id);
        }
    }

    propagate(db, resolver, op, &mut view, delta, config, &mut stats)?;
    Ok((view, stats))
}

/// Semi-naive propagation: closes `view` under the operator, starting
/// from `delta` (ids of entries not yet combined with the rest). This is
/// both the fixpoint engine's inner loop and the upward-propagation step
/// of the insertion algorithm (`P_ADD`, Algorithm 3).
pub(crate) fn propagate(
    db: &ConstrainedDatabase,
    resolver: &dyn DomainResolver,
    op: Operator,
    view: &mut MaterializedView,
    mut delta: Vec<EntryId>,
    config: &FixpointConfig,
    stats: &mut FixpointStats,
) -> Result<(), FixpointError> {
    let mode = view.mode();
    // Semi-naive rounds.
    while !delta.is_empty() {
        stats.iterations += 1;
        if stats.iterations > config.max_iterations {
            return Err(FixpointError::IterationBudget {
                iterations: stats.iterations,
            });
        }
        // Freeze this round's candidate lists: everything live ("all"),
        // split into "old" (not in delta) per predicate.
        let delta_set: std::collections::HashSet<EntryId> = delta.iter().copied().collect();
        let mut all: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        let mut old: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        let mut delta_by_pred: FxHashMap<Arc<str>, Vec<EntryId>> = FxHashMap::default();
        for (id, e) in view.live_entries() {
            all.entry(e.atom.pred.clone()).or_default().push(id);
            if delta_set.contains(&id) {
                delta_by_pred
                    .entry(e.atom.pred.clone())
                    .or_default()
                    .push(id);
            } else {
                old.entry(e.atom.pred.clone()).or_default().push(id);
            }
        }
        let empty: Vec<EntryId> = Vec::new();
        let mut next_delta: Vec<EntryId> = Vec::new();

        for (cid, clause) in db.clauses() {
            let n = clause.body.len();
            if n == 0 {
                continue;
            }
            for dpos in 0..n {
                let dlist = delta_by_pred.get(&clause.body[dpos].pred).unwrap_or(&empty);
                if dlist.is_empty() {
                    continue;
                }
                // Positions before dpos draw from old-only, dpos from the
                // delta, after dpos from everything: each combination is
                // enumerated exactly once per round.
                let lists: Vec<&[EntryId]> = (0..n)
                    .map(|i| {
                        let src = match i.cmp(&dpos) {
                            std::cmp::Ordering::Less => old.get(&clause.body[i].pred),
                            std::cmp::Ordering::Equal => Some(dlist),
                            std::cmp::Ordering::Greater => all.get(&clause.body[i].pred),
                        };
                        src.map(|v| v.as_slice()).unwrap_or(&[])
                    })
                    .collect();
                if lists.iter().any(|l| l.is_empty()) {
                    continue;
                }
                let mut combo = vec![0usize; n];
                'combos: loop {
                    // Materialize this combination.
                    let children: Vec<(&ConstrainedAtom, Support)> = combo
                        .iter()
                        .enumerate()
                        .map(|(i, &k)| {
                            let e = view.entry(lists[i][k]);
                            (
                                &e.atom,
                                e.support.clone().unwrap_or_else(|| {
                                    // Plain mode: synthesize a throwaway
                                    // support (not stored).
                                    Support::leaf(Producer::Clause(cid))
                                }),
                            )
                        })
                        .collect();
                    stats.derivations_tried += 1;
                    // Support-level dedup before paying for construction.
                    let mut skip = false;
                    if mode == SupportMode::WithSupports {
                        let support = Support::node(
                            Producer::Clause(cid),
                            children.iter().map(|(_, s)| s.clone()).collect(),
                        );
                        if view.entry_by_support(&support).is_some() {
                            skip = true;
                        }
                    }
                    if !skip {
                        // `derive` needs `&mut view` for the var gen while
                        // `children` borrows `view`: clone the child atoms.
                        let owned: Vec<(ConstrainedAtom, Support)> = children
                            .iter()
                            .map(|(a, s)| ((*a).clone(), s.clone()))
                            .collect();
                        let borrowed: Vec<(&ConstrainedAtom, Support)> =
                            owned.iter().map(|(a, s)| (a, s.clone())).collect();
                        let derived = derive(cid, clause, &borrowed, view.var_gen_mut());
                        match derived {
                            None => stats.pruned_syntactic += 1,
                            Some(d) => {
                                if admit(op, &d.atom.constraint, resolver, config, stats) {
                                    let support = matches!(mode, SupportMode::WithSupports)
                                        .then_some(d.support);
                                    if let Some(id) = view.insert(d.atom, support, d.children_args)
                                    {
                                        next_delta.push(id);
                                        if view.len() > config.max_entries {
                                            return Err(FixpointError::EntryBudget {
                                                entries: view.len(),
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // Odometer.
                    for i in 0..n {
                        combo[i] += 1;
                        if combo[i] < lists[i].len() {
                            continue 'combos;
                        }
                        combo[i] = 0;
                    }
                    break;
                }
            }
        }
        delta = next_delta;
    }
    Ok(())
}

/// The operator's admission test for a derived constraint.
fn admit(
    op: Operator,
    constraint: &Constraint,
    resolver: &dyn DomainResolver,
    config: &FixpointConfig,
    stats: &mut FixpointStats,
) -> bool {
    match op {
        Operator::Wp => true,
        Operator::Tp => {
            if satisfiable_with(constraint, resolver, &config.solver) == Truth::Unsat {
                stats.pruned_unsolvable += 1;
                false
            } else {
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BodyAtom, Clause};
    use mmv_constraints::{CmpOp, NoDomains, Value};

    fn x() -> Term {
        Term::var(Var(0))
    }

    /// The paper's Example 5 database (ids 0-based; paper clause k =
    /// `ClauseId(k-1)`):
    /// 1. `A(X) <- X <= 3`
    /// 2. `A(X) <- B(X)`
    /// 3. `B(X) <- X <= 5`
    /// 4. `C(X) <- A(X)`
    fn example5_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(3)),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Le, Term::int(5)),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    fn render(view: &MaterializedView) -> Vec<String> {
        let mut v: Vec<String> = view
            .live_entries()
            .map(|(_, e)| {
                let atom = crate::view::canonicalize(&e.atom);
                match &e.support {
                    Some(s) => format!("{atom} {s}"),
                    None => atom.to_string(),
                }
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn example5_view_matches_paper() {
        let db = example5_db();
        let (view, stats) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // Paper's materialized view (supports in 1-based clause numbers
        // there; 0-based here):
        //   A(X) <- X <= 3   <0>
        //   A(X) <- X <= 5   <1, <2>>
        //   B(X) <- X <= 5   <2>
        //   C(X) <- X <= 3   <3, <0>>
        //   C(X) <- X <= 5   <3, <1, <2>>>
        assert_eq!(
            render(&view),
            vec![
                "A(X0) <- X0 <= 3 <0>",
                "A(X0) <- X0 <= 5 <1, <2>>",
                "B(X0) <- X0 <= 5 <2>",
                "C(X0) <- X0 <= 3 <3, <0>>",
                "C(X0) <- X0 <= 5 <3, <1, <2>>>",
            ]
        );
        assert_eq!(view.len(), 5);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn example6_recursive_view_matches_paper() {
        // Example 6:
        //   1. P(X,Y) <- X = a & Y = b
        //   2. P(X,Y) <- X = a & Y = c
        //   3. P(X,Y) <- X = c & Y = d
        //   4. A(X,Y) <- P(X,Y)
        //   5. A(X,Y) <- P(X,Z), A(Z,Y)
        let (xv, yv, zv) = (Term::var(Var(0)), Term::var(Var(1)), Term::var(Var(2)));
        let pfact = |a: &str, b: &str| {
            Clause::fact(
                "P",
                vec![xv.clone(), yv.clone()],
                Constraint::eq(xv.clone(), Term::str(a))
                    .and(Constraint::eq(yv.clone(), Term::str(b))),
            )
        };
        let db = ConstrainedDatabase::from_clauses(vec![
            pfact("a", "b"),
            pfact("a", "c"),
            pfact("c", "d"),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![BodyAtom::new("P", vec![xv.clone(), yv.clone()])],
            ),
            Clause::new(
                "A",
                vec![xv.clone(), yv.clone()],
                Constraint::truth(),
                vec![
                    BodyAtom::new("P", vec![xv.clone(), zv.clone()]),
                    BodyAtom::new("A", vec![zv.clone(), yv.clone()]),
                ],
            ),
        ]);
        let (view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // The paper's 7-entry view: 3 P facts, 3 A copies, and the
        // recursive A(a, d) via P(a,c) ∧ A(c,d).
        assert_eq!(view.len(), 7);
        let inst = view
            .instances(&NoDomains, &SolverConfig::default())
            .unwrap();
        let a_insts: Vec<_> = inst
            .iter()
            .filter(|(p, _)| p.as_ref() == "A")
            .map(|(_, t)| t.clone())
            .collect();
        assert!(a_insts.contains(&vec![Value::str("a"), Value::str("d")]));
        assert_eq!(a_insts.len(), 4);
        // The recursive entry comes from clause 5 (0-based: 4) with
        // children P(a,c) (clause 2 -> <1>) and the derived A(c,d)
        // (paper support <4,<3>> -> 0-based <3, <2>>).
        let deep = view
            .live_entries()
            .find(|(_, e)| e.support.as_ref().is_some_and(|s| s.height() == 2))
            .expect("recursive entry");
        assert_eq!(
            deep.1.support.as_ref().unwrap().to_string(),
            "<4, <1>, <3, <2>>>"
        );
    }

    #[test]
    fn wp_keeps_unsolvable_derivations() {
        // Under a resolver where the call is empty, T_P prunes but W_P
        // retains the atom (Example 7's B(X) <- in(X, d:g(b))).
        let call = mmv_constraints::Call::new("d", "g", vec![Term::str("b")]);
        let db = ConstrainedDatabase::from_clauses(vec![Clause::fact(
            "B",
            vec![x()],
            Constraint::member(x(), call),
        )]);
        let (tp_view, _) = fixpoint(
            &db,
            &NoDomains, // every call resolves to {} -> unsolvable
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(tp_view.len(), 0);
        let (wp_view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Wp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(wp_view.len(), 1);
    }

    /// Example 5 with a lower bound added so instance sets are finite.
    fn bounded_example5_db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "A",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(3),
                )),
            ),
            Clause::new(
                "A",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("B", vec![x()])],
            ),
            Clause::fact(
                "B",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(5),
                )),
            ),
            Clause::new(
                "C",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("A", vec![x()])],
            ),
        ])
    }

    #[test]
    fn plain_mode_produces_same_instances() {
        let db = bounded_example5_db();
        let cfg = FixpointConfig::default();
        let (with, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        let (plain, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        let scfg = SolverConfig::default();
        assert_eq!(
            with.instances(&NoDomains, &scfg).unwrap(),
            plain.instances(&NoDomains, &scfg).unwrap()
        );
        // Plain mode deduplicates; duplicate semantics keeps both A atoms.
        assert!(plain.len() <= with.len());
    }

    #[test]
    fn iteration_budget_reports_divergence() {
        // succ-style runaway recursion: N(X) <- N(Y) & X = Y + 1 over the
        // arith domain would diverge; simulate with a self-join that
        // always makes fresh atoms. Here: N(X) <- X >= 0; N(X) <- N(Y), X > Y.
        // Each round builds new constraints, and plain-mode dedup cannot
        // close it because the constraint grows.
        let y = Term::var(Var(1));
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "N",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)),
            ),
            Clause::new(
                "N",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Gt, y.clone()),
                vec![BodyAtom::new("N", vec![y.clone()])],
            ),
        ]);
        let cfg = FixpointConfig {
            max_iterations: 16,
            ..FixpointConfig::default()
        };
        let err = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, FixpointError::IterationBudget { .. }));
    }

    #[test]
    fn seeded_fixpoint_is_inflationary() {
        let db = example5_db();
        let cfg = FixpointConfig::default();
        let (mut seed, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        // Inject an extra fact entry, then re-run: everything survives.
        let extra = ConstrainedAtom::new(
            "A",
            vec![Term::var(Var(900))],
            Constraint::eq(Term::var(Var(900)), Term::int(99)),
        );
        let ticket = seed.fresh_external_ticket();
        seed.insert(
            extra,
            Some(Support::leaf(Producer::External(ticket))),
            vec![],
        );
        let before = seed.len();
        let (closed, _) = fixpoint_seeded(&db, &NoDomains, Operator::Tp, seed, &cfg).unwrap();
        // The new A atom feeds clause 4 (C(X) <- A(X)): at least one new
        // derivation appears.
        assert!(closed.len() > before);
        let hits = closed
            .query(
                "C",
                &[Some(Value::int(99))],
                &NoDomains,
                &SolverConfig::default(),
            )
            .unwrap();
        assert_eq!(hits.len(), 1);
    }
}
