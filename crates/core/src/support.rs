//! Supports: the derivation indexes of the Straight Delete algorithm
//! (paper §3.1.2).
//!
//! `spt(A ← φ) = ⟨Cn(C), spt(B1), …, spt(Bk)⟩` records which clause and
//! which child derivations produced a view entry. By Lemma 1, a support
//! uniquely identifies a constraint atom of `T_P ↑ ω(∅)` — which is why
//! the view can key entries by support and why semi-naive iteration can
//! use "new support" as its delta test.

use crate::program::ClauseId;
use mmv_constraints::fxhash::FxHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// What produced a view entry at the root of a support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Producer {
    /// A clause of the constrained database.
    Clause(ClauseId),
    /// An external insertion (Algorithm 3); the payload is a unique
    /// insertion ticket so distinct insertions have distinct supports.
    External(u64),
}

impl fmt::Display for Producer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Producer::Clause(c) => write!(f, "{c}"),
            Producer::External(t) => write!(f, "ext{t}"),
        }
    }
}

#[derive(Debug)]
struct SupportNode {
    producer: Producer,
    children: Vec<Support>,
    /// Structural hash, precomputed for O(1) map keys.
    hash: u64,
    /// Derivation height (leaf = 0), used to process StDel replacements
    /// children-before-parents.
    height: u32,
}

/// A derivation index: an immutable, cheaply clonable tree.
#[derive(Debug, Clone)]
pub struct Support(Arc<SupportNode>);

impl Support {
    /// A leaf support `⟨Cn(C)⟩` (or an external-insertion ticket).
    pub fn leaf(producer: Producer) -> Support {
        Support::node(producer, vec![])
    }

    /// An internal support `⟨producer, children…⟩`.
    pub fn node(producer: Producer, children: Vec<Support>) -> Support {
        let mut h = FxHasher::default();
        producer.hash(&mut h);
        for c in &children {
            h.write_u64(c.0.hash);
        }
        let height = children.iter().map(|c| c.0.height + 1).max().unwrap_or(0);
        Support(Arc::new(SupportNode {
            producer,
            children,
            hash: h.finish(),
            height,
        }))
    }

    /// The root producer.
    pub fn producer(&self) -> Producer {
        self.0.producer
    }

    /// The child supports.
    pub fn children(&self) -> &[Support] {
        &self.0.children
    }

    /// Derivation height (leaf = 0).
    pub fn height(&self) -> u32 {
        self.0.height
    }

    /// The precomputed structural hash.
    pub fn structural_hash(&self) -> u64 {
        self.0.hash
    }
}

impl PartialEq for Support {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        self.0.hash == other.0.hash
            && self.0.producer == other.0.producer
            && self.0.children == other.0.children
    }
}

impl Eq for Support {}

impl Hash for Support {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.0.producer)?;
        for c in &self.0.children {
            write!(f, ", {c}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(i: usize) -> Producer {
        Producer::Clause(ClauseId(i))
    }

    #[test]
    fn display_matches_paper_notation() {
        // Example 5's support <4, <2, <3>>>.
        let s3 = Support::leaf(clause(3));
        let s23 = Support::node(clause(2), vec![s3]);
        let s = Support::node(clause(4), vec![s23]);
        assert_eq!(s.to_string(), "<4, <2, <3>>>");
        assert_eq!(s.height(), 2);
    }

    #[test]
    fn structural_equality_and_hash() {
        let a = Support::node(clause(4), vec![Support::leaf(clause(1))]);
        let b = Support::node(clause(4), vec![Support::leaf(clause(1))]);
        let c = Support::node(clause(4), vec![Support::leaf(clause(2))]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.structural_hash(), b.structural_hash());
        let mut map = mmv_constraints::fxhash::FxHashMap::default();
        map.insert(a.clone(), 1);
        assert_eq!(map.get(&b), Some(&1));
        assert_eq!(map.get(&c), None);
    }

    #[test]
    fn external_supports_distinct() {
        let a = Support::leaf(Producer::External(0));
        let b = Support::leaf(Producer::External(1));
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "<ext0>");
    }

    #[test]
    fn children_accessible() {
        let child = Support::leaf(clause(3));
        let s = Support::node(clause(2), vec![child.clone()]);
        assert_eq!(s.children(), &[child]);
        assert_eq!(s.producer(), clause(2));
    }
}
